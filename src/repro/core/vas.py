"""The public VAS sampler — the paper's primary contribution, wrapped
in the shared :class:`~repro.sampling.Sampler` interface.

Typical use::

    from repro import VASSampler

    sampler = VASSampler(rng=0)
    result = sampler.sample(points, k=1000)          # one-shot
    result = sampler.sample_with_density(points, k=1000)  # §V extension

Configuration mirrors the knobs the paper discusses:

* ``kernel`` / ``epsilon`` — the proximity function; by default a
  Gaussian with the footnote-2 bandwidth (diameter / 100), chosen per
  dataset at sampling time;
* ``strategy`` — ``"auto"`` picks ES for small K and ES+Loc for large K
  (the Fig 10 conclusion: the R-tree only pays for itself beyond ~10K
  samples, so ``auto`` switches on ``loc_threshold``);
* ``max_passes`` — Interchange keeps scanning until a pass makes no
  replacement, up to this bound;
* ``engine`` — ``"batched"`` (default) drives the scan through the
  vectorised screen-then-settle engine of
  :mod:`repro.core.interchange`; ``"reference"`` is the per-tuple
  Algorithm 1 loop.  The two produce identical samples for the same
  seed, so the switch is purely a speed/debuggability trade.

This sampler is also the workhorse of the multi-resolution zoom
service (:mod:`repro.storage.zoom`): the ladder builder runs one VAS
instance per tile per zoom level, then serves viewport queries from
the stored ladder without ever re-running Interchange online.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigurationError, EmptyDatasetError
from ..geometry import as_points
from ..rng import as_generator
from ..sampling.base import Sampler, SampleResult, iter_chunks, validate_sample_size
from .density import embed_density
from .epsilon import select_epsilon
from .interchange import ENGINES, PILOT_MODES, InterchangeResult, run_interchange
from .kernel import Kernel, make_kernel

#: ``strategy="auto"`` switches from ES to ES+Loc at this sample size.
DEFAULT_LOC_THRESHOLD = 2000


class VASSampler(Sampler):
    """Visualization-Aware Sampling via the Interchange algorithm.

    Parameters
    ----------
    kernel:
        Kernel family name (``"gaussian"`` — the paper's choice — or
        any of :func:`repro.core.kernel.kernel_names`), or a ready
        :class:`Kernel` instance with its bandwidth fixed.
    epsilon:
        Bandwidth; ``None`` selects the paper's diameter/100 heuristic
        per dataset.  Ignored when ``kernel`` is an instance.
    strategy:
        ``"auto"``, ``"es"``, ``"es+loc"`` or ``"no-es"``.
    max_passes:
        Scan budget for Interchange (early-stops on convergence).
    chunk_size:
        Chunking for the one-shot path and internal streams.
    loc_threshold:
        K at which ``"auto"`` switches to ES+Loc.
    loc_tolerance:
        Kernel-locality truncation tolerance for ES+Loc.
    rng:
        Seed/generator for the shuffled scan order (the random start).
    engine:
        ``"batched"`` (default), ``"pruned"`` (exact kernel-locality
        pruning) or ``"reference"``; see
        :func:`repro.core.interchange.run_interchange`.
    workers:
        ``1`` (default) samples in-process.  ``N > 1`` shards the
        dataset across N processes and merges the shard samples with a
        final interchange pass
        (:class:`~repro.core.parallel.ParallelInterchangeRunner`);
        deterministic for a fixed seed and shard count, but not the
        single-process sample.
    shards:
        Shard count for sharded runs (defaults to ``workers``).  An
        explicit ``shards > 1`` engages the shard-and-merge path even
        at ``workers=1`` (executed serially), so a fixed ``(seed,
        shards)`` pair reproduces the same sample on any pool size.
    pilot:
        ``"auto"`` (default) warm-starts every shard of a sharded run
        from a cheap pilot VAS over a strided subsample, collapsing
        the per-shard accept inflation; ``"off"`` keeps cold shards.
        In-process runs never pilot, so this cannot change a
        ``workers=1``/``shards=1`` sample.
    pilot_size:
        Pilot subsample row count override (default ``n // shards``).
    """

    name = "vas"

    def __init__(
        self,
        kernel: str | Kernel = "gaussian",
        epsilon: float | None = None,
        strategy: str = "auto",
        max_passes: int = 2,
        chunk_size: int = 8192,
        loc_threshold: int = DEFAULT_LOC_THRESHOLD,
        loc_tolerance: float = 1e-6,
        rng: int | np.random.Generator | None = None,
        trace_every: int = 0,
        engine: str = "batched",
        workers: int = 1,
        shards: int | None = None,
        pilot: str = "auto",
        pilot_size: int | None = None,
    ) -> None:
        if strategy not in ("auto", "es", "es+loc", "no-es"):
            raise ConfigurationError(
                f"strategy must be one of auto/es/es+loc/no-es, got {strategy!r}"
            )
        if max_passes < 1:
            raise ConfigurationError(f"max_passes must be >= 1, got {max_passes}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if pilot not in PILOT_MODES:
            raise ConfigurationError(
                f"pilot must be one of {PILOT_MODES}, got {pilot!r}"
            )
        if pilot_size is not None and pilot_size < 1:
            raise ConfigurationError(
                f"pilot_size must be >= 1, got {pilot_size}"
            )
        self.engine = engine
        self.workers = int(workers)
        self.shards = None if shards is None else int(shards)
        self.pilot = pilot
        self.pilot_size = None if pilot_size is None else int(pilot_size)
        self._kernel_spec = kernel
        self.epsilon = epsilon
        self.strategy = strategy
        self.max_passes = int(max_passes)
        self.chunk_size = int(chunk_size)
        self.loc_threshold = int(loc_threshold)
        self.loc_tolerance = float(loc_tolerance)
        self._rng = as_generator(rng)
        self.trace_every = int(trace_every)
        #: Populated after each run, for Fig 9-style inspection.
        self.last_run: InterchangeResult | None = None

    # -- kernel resolution --------------------------------------------------
    def resolve_kernel(self, points: np.ndarray) -> Kernel:
        """The κ̃ instance used for a given dataset.

        An explicit :class:`Kernel` is passed through; otherwise the
        family name plus ``epsilon`` (or the footnote-2 heuristic on
        ``points``) builds one.
        """
        if isinstance(self._kernel_spec, Kernel):
            return self._kernel_spec
        eps = self.epsilon
        if eps is None:
            eps = select_epsilon(points, method="diameter", rng=self._rng)
        return make_kernel(self._kernel_spec, eps)

    def _resolve_strategy(self, k: int) -> tuple[str, dict]:
        if self.strategy == "auto":
            chosen = "es+loc" if k >= self.loc_threshold else "es"
        else:
            chosen = self.strategy
        kwargs: dict = {}
        if chosen == "es+loc":
            kwargs["tolerance"] = self.loc_tolerance
        return chosen, kwargs

    # -- sampling -------------------------------------------------------------
    def sample(self, points: np.ndarray, k: int) -> SampleResult:
        pts = as_points(points)
        k = validate_sample_size(k)
        if len(pts) == 0:
            raise EmptyDatasetError("VAS received no points")
        if k >= len(pts):
            idx = np.arange(len(pts), dtype=np.int64)
            return SampleResult(points=pts[idx], indices=idx, method=self.name)

        kernel = self.resolve_kernel(pts)
        strategy, strategy_kwargs = self._resolve_strategy(k)
        # The parallel runner re-chunks its shards itself; handing it
        # the whole array as one chunk avoids a full-dataset copy at
        # materialisation.  The in-process path keeps real chunking
        # (it shapes the shuffled scan order).
        sharded = self.workers > 1 or (self.shards or 1) > 1
        if sharded:
            chunks_factory = lambda: iter((pts,))  # noqa: E731
        else:
            chunks_factory = lambda: iter_chunks(pts, self.chunk_size)  # noqa: E731
        run = run_interchange(
            chunks_factory=chunks_factory,
            k=k,
            kernel=kernel,
            strategy=strategy,
            max_passes=self.max_passes,
            trace_every=self.trace_every,
            rng=self._rng,
            strategy_kwargs=strategy_kwargs,
            engine=self.engine,
            workers=self.workers,
            shards=self.shards,
            parallel_chunk_size=self.chunk_size,
            pilot=self.pilot,
            pilot_size=self.pilot_size,
        )
        self.last_run = run
        order = np.argsort(run.source_ids)
        return SampleResult(
            points=run.points[order],
            indices=run.source_ids[order],
            method=self.name,
            metadata={
                "objective": run.objective,
                "strategy": run.strategy,
                "engine": run.engine,
                "passes": run.passes,
                "replacements": run.replacements,
                "epsilon": kernel.epsilon,
                "kernel": kernel.name,
                "workers": run.workers,
                "shards": run.shards,
                "pilot": run.pilot,
            },
        )

    def sample_stream(self, chunks: Iterable[np.ndarray], k: int) -> SampleResult:
        """Streaming VAS over a non-repeatable stream.

        A non-repeatable stream permits a single pass, and the kernel
        bandwidth cannot be chosen from the full data upfront — so an
        explicit ``epsilon`` (or kernel instance) is required here.
        """
        if self.workers != 1 or (self.shards or 1) > 1:
            raise ConfigurationError(
                "streaming VAS is single-process (sharding needs random "
                "access to the data); use workers=1 or sample()"
            )
        if not isinstance(self._kernel_spec, Kernel) and self.epsilon is None:
            raise ConfigurationError(
                "streaming VAS needs an explicit epsilon or kernel instance "
                "(the diameter heuristic requires seeing all data first)"
            )
        k = validate_sample_size(k)
        kernel = (self._kernel_spec if isinstance(self._kernel_spec, Kernel)
                  else make_kernel(self._kernel_spec, float(self.epsilon)))
        strategy, strategy_kwargs = self._resolve_strategy(k)
        materialized = iter(chunks)
        run = run_interchange(
            chunks_factory=lambda: materialized,
            k=k,
            kernel=kernel,
            strategy=strategy,
            max_passes=1,
            trace_every=self.trace_every,
            rng=self._rng,
            strategy_kwargs=strategy_kwargs,
            engine=self.engine,
        )
        self.last_run = run
        order = np.argsort(run.source_ids)
        return SampleResult(
            points=run.points[order],
            indices=run.source_ids[order],
            method=self.name,
            metadata={"objective": run.objective, "strategy": run.strategy,
                      "engine": run.engine},
        )

    # -- §V ---------------------------------------------------------------------
    def sample_with_density(self, points: np.ndarray, k: int) -> SampleResult:
        """VAS followed by the density-embedding second pass (§V)."""
        base = self.sample(points, k)
        pts = as_points(points)
        return embed_density(base, iter_chunks(pts, self.chunk_size))
