"""MIP formulation of VAS and an LP-format exporter.

The paper solves VAS exactly by "converting the problem to an instance
of integer programming and solving it using a standard library" (GLPK;
§VI-D and the technical report).  The standard linearisation of

    min Σ_{i<j} κ̃(s_i, s_j) x_i x_j     s.t. Σ x_i = K,  x ∈ {0,1}^N

introduces pair variables ``y_ij`` with the McCormick constraints

    y_ij >= x_i + x_j - 1,   y_ij >= 0

(the upper constraints ``y_ij <= x_i`` are unnecessary under
minimisation with κ̃ >= 0), giving

    min Σ_{i<j} κ̃_ij · y_ij
    s.t. Σ_i x_i = K
         y_ij >= x_i + x_j - 1        for all i < j with κ̃_ij > threshold
         x binary, y >= 0.

No MIP solver ships in this environment, so this module provides the
*formulation*: :func:`build_mip` constructs the model symbolically and
:func:`to_lp_format` serialises it in CPLEX LP format, ready for GLPK
(``glpsol --lp``), CBC or Gurobi outside the sandbox.
:func:`solve_with_branch_and_bound` bridges to our in-repo exact solver
so the formulation is testable end-to-end: the LP objective evaluated
at the B&B optimum must equal the B&B objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, EmptyDatasetError
from ..geometry import as_points
from .exact import solve_branch_and_bound
from .kernel import Kernel


@dataclass
class MipModel:
    """A symbolic VAS MIP: variables, objective terms and constraints.

    Attributes
    ----------
    n / k:
        Problem dimensions.
    objective_terms:
        ``{(i, j): coefficient}`` over pairs ``i < j``.
    pair_threshold:
        Pairs with κ̃ below this were dropped (locality sparsification —
        the same trick ES+Loc uses, applied to the model size).
    """

    n: int
    k: int
    objective_terms: dict[tuple[int, int], float] = field(default_factory=dict)
    pair_threshold: float = 0.0

    @property
    def n_pair_variables(self) -> int:
        return len(self.objective_terms)

    def objective_at(self, selected: np.ndarray) -> float:
        """Evaluate the (sparsified) objective for a 0/1 selection."""
        chosen = set(int(i) for i in np.nonzero(selected)[0])
        return sum(coef for (i, j), coef in self.objective_terms.items()
                   if i in chosen and j in chosen)


def build_mip(points: np.ndarray, k: int, kernel: Kernel,
              pair_threshold: float = 1e-12) -> MipModel:
    """Construct the VAS MIP for a dataset and sample size."""
    pts = as_points(points)
    if len(pts) == 0:
        raise EmptyDatasetError("cannot build a MIP over no points")
    if not (1 <= k <= len(pts)):
        raise ConfigurationError(f"k must be in [1, {len(pts)}], got {k}")
    if pair_threshold < 0:
        raise ConfigurationError(
            f"pair_threshold must be >= 0, got {pair_threshold}"
        )
    sim = kernel.similarity_matrix(pts)
    model = MipModel(n=len(pts), k=k, pair_threshold=pair_threshold)
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            coef = float(sim[i, j])
            if coef > pair_threshold:
                model.objective_terms[(i, j)] = coef
    return model


def to_lp_format(model: MipModel, name: str = "vas") -> str:
    """Serialise the model in CPLEX LP format (GLPK/CBC-compatible)."""
    lines: list[str] = [f"\\* VAS MIP: n={model.n}, k={model.k} *\\", ""]
    lines.append("Minimize")
    if model.objective_terms:
        terms = " + ".join(
            f"{coef:.12g} y_{i}_{j}"
            for (i, j), coef in sorted(model.objective_terms.items())
        )
    else:
        terms = "0 x_0"
    lines.append(f" obj: {terms}")
    lines.append("")
    lines.append("Subject To")
    cardinality = " + ".join(f"x_{i}" for i in range(model.n))
    lines.append(f" card: {cardinality} = {model.k}")
    for (i, j) in sorted(model.objective_terms):
        lines.append(f" mc_{i}_{j}: y_{i}_{j} - x_{i} - x_{j} >= -1")
    lines.append("")
    lines.append("Bounds")
    for (i, j) in sorted(model.objective_terms):
        lines.append(f" 0 <= y_{i}_{j} <= 1")
    lines.append("")
    lines.append("Binary")
    for i in range(model.n):
        lines.append(f" x_{i}")
    lines.append("")
    lines.append("End")
    return "\n".join(lines)


def solve_with_branch_and_bound(points: np.ndarray, k: int,
                                kernel: Kernel) -> tuple[MipModel, np.ndarray, float]:
    """Solve the formulation with the in-repo exact solver.

    Returns ``(model, selection_vector, objective)``; the objective is
    verified consistent between the model evaluation and the solver.
    """
    pts = as_points(points)
    model = build_mip(pts, k, kernel)
    result = solve_branch_and_bound(pts, k, kernel)
    selection = np.zeros(len(pts), dtype=np.int8)
    selection[result.indices] = 1
    model_obj = model.objective_at(selection)
    if abs(model_obj - result.objective) > 1e-6 * max(1.0, abs(model_obj)):
        raise AssertionError(
            f"formulation/solver mismatch: {model_obj} vs {result.objective}"
        )
    return model, selection, result.objective
