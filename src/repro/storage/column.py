"""Typed columns over numpy arrays.

The storage substrate is a miniature in-memory column store — the
"dedicated RDBMS" of the paper's Fig 3 architecture.  A
:class:`Column` wraps one *logical* numpy array with a declared type
and validates on construction, so schema errors surface at load time
rather than mid-query.

Physically a column is **segmented**: a list of chunks that are only
concatenated (and the result cached) when somebody actually asks for
the contiguous ``values`` array.  That makes the live-table append
path O(delta) — :meth:`Column.extended` pushes one new segment and
shares the existing ones with the parent column instead of re-copying
every row — while read paths that want one flat array pay the
consolidation exactly once.  :meth:`Column.tail` serves the
maintenance path's "rows after N" reads from the segments directly,
so a hot append stream never triggers a full consolidation at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SchemaError

#: Logical type → acceptable numpy kinds.
_TYPE_KINDS = {
    "float64": ("f",),
    "int64": ("i", "u"),
    "str": ("U", "O"),
}


@dataclass(frozen=True)
class ColumnType:
    """A logical column type: ``float64``, ``int64`` or ``str``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _TYPE_KINDS:
            raise SchemaError(
                f"unknown column type {self.name!r}; "
                f"expected one of {sorted(_TYPE_KINDS)}"
            )

    def coerce(self, values: np.ndarray) -> np.ndarray:
        """Coerce raw values to this type's canonical dtype."""
        arr = np.asarray(values)
        if self.name == "float64":
            return arr.astype(np.float64, copy=False)
        if self.name == "int64":
            if arr.dtype.kind == "f" and not np.all(arr == np.floor(arr)):
                raise SchemaError("non-integral values in int64 column")
            return arr.astype(np.int64, copy=False)
        return arr.astype(str, copy=False)

    @property
    def is_numeric(self) -> bool:
        return self.name in ("float64", "int64")


FLOAT64 = ColumnType("float64")
INT64 = ColumnType("int64")
STRING = ColumnType("str")


class Column:
    """One named, typed column over a list of segments.

    Parameters
    ----------
    name:
        Column name (non-empty).
    ctype:
        The logical :class:`ColumnType`.
    values:
        Raw values; coerced and validated.
    """

    def __init__(self, name: str, ctype: ColumnType, values: np.ndarray) -> None:
        self._init(name, ctype, [np.asarray(values)])

    @classmethod
    def from_segments(cls, name: str, ctype: ColumnType,
                      segments: Sequence[np.ndarray]) -> "Column":
        """A column over chunks, coerced per chunk, concatenated lazily.

        This is the O(delta) construction the append path and the
        segment-file loader use: the chunks are referenced, not
        copied, and only fused when :attr:`values` is first read.
        """
        if not segments:
            raise SchemaError(
                f"column {name!r} needs at least one segment"
            )
        column = cls.__new__(cls)
        column._init(name, ctype, [np.asarray(seg) for seg in segments])
        return column

    def _init(self, name: str, ctype: ColumnType,
              segments: list[np.ndarray]) -> None:
        """The one construction path behind both constructors."""
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        self.ctype = ctype
        self._segments = [self._validated(ctype.coerce(seg))
                          for seg in segments]
        self._length = sum(len(seg) for seg in self._segments)

    def _validated(self, segment: np.ndarray) -> np.ndarray:
        if segment.ndim != 1:
            raise SchemaError(
                f"column {self.name!r} must be 1-D, got shape "
                f"{segment.shape}"
            )
        return segment

    def __len__(self) -> int:
        return self._length

    @property
    def segment_count(self) -> int:
        """How many physical chunks back this column right now."""
        return len(self._segments)

    @property
    def values(self) -> np.ndarray:
        """The contiguous backing array (treat as read-only).

        Consolidates the segments on first access and caches the
        result — repeated reads cost nothing, and the append path
        never pays for it at all.
        """
        if len(self._segments) > 1:
            self._segments = [np.concatenate(self._segments)]
        return self._segments[0]

    def tail(self, start: int) -> np.ndarray:
        """``values[start:]`` without consolidating the whole column.

        Only the segments past ``start`` are touched, so reading the
        delta rows an append just pushed is O(delta) no matter how
        long the column has grown.
        """
        if start <= 0:
            return self.values
        parts = []
        offset = 0
        for segment in self._segments:
            stop = offset + len(segment)
            if stop > start:
                parts.append(segment if start <= offset
                             else segment[start - offset:])
            offset = stop
        if not parts:
            return self._segments[-1][:0]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def take(self, indices: np.ndarray) -> "Column":
        """A new column with the given rows."""
        return Column(self.name, self.ctype, self.values[indices])

    def slice(self, start: int, stop: int) -> "Column":
        """A new column over ``values[start:stop]``."""
        return Column(self.name, self.ctype, self.values[start:stop])

    def extended(self, values: np.ndarray) -> "Column":
        """A new column with ``values`` (coerced) appended at the end.

        O(delta): the existing segments are shared with this column,
        and the new rows ride along as one more segment.  Nothing is
        concatenated until someone reads :attr:`values`.
        """
        extra = self.ctype.coerce(np.asarray(values))
        return Column.from_segments(self.name, self.ctype,
                                    [*self._segments, extra])

    def min(self) -> float:
        if not self.ctype.is_numeric:
            raise SchemaError(f"min() on non-numeric column {self.name!r}")
        return float(min(seg.min() for seg in self._segments if len(seg)))

    def max(self) -> float:
        if not self.ctype.is_numeric:
            raise SchemaError(f"max() on non-numeric column {self.name!r}")
        return float(max(seg.max() for seg in self._segments if len(seg)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column({self.name!r}, {self.ctype.name}, n={len(self)})"
