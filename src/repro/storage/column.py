"""Typed columns over numpy arrays.

The storage substrate is a miniature in-memory column store — the
"dedicated RDBMS" of the paper's Fig 3 architecture.  A
:class:`Column` wraps one numpy array with a declared logical type and
validates on construction, so schema errors surface at load time rather
than mid-query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError

#: Logical type → acceptable numpy kinds.
_TYPE_KINDS = {
    "float64": ("f",),
    "int64": ("i", "u"),
    "str": ("U", "O"),
}


@dataclass(frozen=True)
class ColumnType:
    """A logical column type: ``float64``, ``int64`` or ``str``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _TYPE_KINDS:
            raise SchemaError(
                f"unknown column type {self.name!r}; "
                f"expected one of {sorted(_TYPE_KINDS)}"
            )

    def coerce(self, values: np.ndarray) -> np.ndarray:
        """Coerce raw values to this type's canonical dtype."""
        arr = np.asarray(values)
        if self.name == "float64":
            return arr.astype(np.float64, copy=False)
        if self.name == "int64":
            if arr.dtype.kind == "f" and not np.all(arr == np.floor(arr)):
                raise SchemaError("non-integral values in int64 column")
            return arr.astype(np.int64, copy=False)
        return arr.astype(str, copy=False)

    @property
    def is_numeric(self) -> bool:
        return self.name in ("float64", "int64")


FLOAT64 = ColumnType("float64")
INT64 = ColumnType("int64")
STRING = ColumnType("str")


class Column:
    """One named, typed column.

    Parameters
    ----------
    name:
        Column name (non-empty).
    ctype:
        The logical :class:`ColumnType`.
    values:
        Raw values; coerced and validated.
    """

    def __init__(self, name: str, ctype: ColumnType, values: np.ndarray) -> None:
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        self.ctype = ctype
        self._values = ctype.coerce(values)
        if self._values.ndim != 1:
            raise SchemaError(
                f"column {name!r} must be 1-D, got shape {self._values.shape}"
            )

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The backing array (treat as read-only)."""
        return self._values

    def take(self, indices: np.ndarray) -> "Column":
        """A new column with the given rows."""
        return Column(self.name, self.ctype, self._values[indices])

    def slice(self, start: int, stop: int) -> "Column":
        """A new column over ``values[start:stop]``."""
        return Column(self.name, self.ctype, self._values[start:stop])

    def extended(self, values: np.ndarray) -> "Column":
        """A new column with ``values`` (coerced) appended at the end."""
        extra = self.ctype.coerce(np.asarray(values))
        return Column(self.name, self.ctype,
                      np.concatenate([self._values, extra]))

    def min(self) -> float:
        if not self.ctype.is_numeric:
            raise SchemaError(f"min() on non-numeric column {self.name!r}")
        return float(self._values.min())

    def max(self) -> float:
        if not self.ctype.is_numeric:
            raise SchemaError(f"max() on non-numeric column {self.name!r}")
        return float(self._values.max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column({self.name!r}, {self.ctype.name}, n={len(self)})"
