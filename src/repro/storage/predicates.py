"""Filter predicates over table rows.

Visualization queries filter on continuous ranges (the zoom window maps
to a conjunction of two between-predicates — exactly the workload §III
says uniform/stratified sampling serves poorly).  The predicate algebra
here covers what those queries need: range, comparison, equality, and
boolean combinators, each compiling to a vectorised boolean mask.

Three evaluation surfaces share the one algebra:

* :meth:`Predicate.mask` — a full-table boolean mask (consolidates
  each referenced column once, cached by the column);
* :meth:`Predicate.mask_tail` — the same mask over only the rows past
  a start offset, read through :meth:`~repro.storage.column.Column.tail`
  so evaluating a predicate over an append's delta rows stays O(delta)
  and never consolidates the column;
* :func:`compile_points_mask` — the predicate compiled against a
  point-array column layout (``{"x": 0, "y": 1}``), the form the zoom
  ladder pushes into its tile walk at query time.

:func:`parse_predicate` turns the service's wire syntax — a JSON
object or a compact ``col>=0.5,col2<1`` query string — into the
algebra; malformed input raises :class:`~repro.errors.SchemaError`.
"""

from __future__ import annotations

import abc
import json
import re
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from .table import Table


class Predicate(abc.ABC):
    """A row filter; evaluates to a boolean mask over a table."""

    @abc.abstractmethod
    def mask(self, table: "Table") -> np.ndarray:
        """``(len(table),)`` boolean mask of matching rows."""

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        """Mask of rows ``start:`` only — the delta-range variant.

        Leaf predicates override this to read
        :meth:`~repro.storage.column.Column.tail`, which touches only
        the trailing segments; this fallback serves predicates that
        only implement :meth:`mask`.
        """
        return self.mask(table)[max(int(start), 0):]

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Between(Predicate):
    """``lo <= column <= hi`` (closed interval)."""

    def __init__(self, column: str, lo: float, hi: float) -> None:
        if lo > hi:
            raise SchemaError(f"between bounds inverted: [{lo}, {hi}]")
        self.column = column
        self.lo = lo
        self.hi = hi

    def mask(self, table: "Table") -> np.ndarray:
        values = table.column(self.column).values
        return (values >= self.lo) & (values <= self.hi)

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        values = table.column(self.column).tail(max(int(start), 0))
        return (values >= self.lo) & (values <= self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Between({self.column!r}, {self.lo}, {self.hi})"


class Compare(Predicate):
    """``column <op> value`` for op in <, <=, >, >=, ==, !=."""

    _OPS = {
        "<": np.less, "<=": np.less_equal,
        ">": np.greater, ">=": np.greater_equal,
        "==": np.equal, "!=": np.not_equal,
    }

    def __init__(self, column: str, op: str, value) -> None:
        if op not in self._OPS:
            raise SchemaError(
                f"unknown operator {op!r}; expected one of {sorted(self._OPS)}"
            )
        self.column = column
        self.op = op
        self.value = value

    def mask(self, table: "Table") -> np.ndarray:
        values = table.column(self.column).values
        return self._OPS[self.op](values, self.value)

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        values = table.column(self.column).tail(max(int(start), 0))
        return self._OPS[self.op](values, self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compare({self.column!r} {self.op} {self.value!r})"


class And(Predicate):
    """Conjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: "Table") -> np.ndarray:
        return self.left.mask(table) & self.right.mask(table)

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        return (self.left.mask_tail(table, start)
                & self.right.mask_tail(table, start))


class Or(Predicate):
    """Disjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: "Table") -> np.ndarray:
        return self.left.mask(table) | self.right.mask(table)

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        return (self.left.mask_tail(table, start)
                | self.right.mask_tail(table, start))


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.inner.mask(table)

    def mask_tail(self, table: "Table", start: int) -> np.ndarray:
        return ~self.inner.mask_tail(table, start)


def viewport_predicate(x_column: str, y_column: str,
                       xmin: float, ymin: float,
                       xmax: float, ymax: float) -> Predicate:
    """The zoom-window filter: two conjunctive between-predicates."""
    return Between(x_column, xmin, xmax) & Between(y_column, ymin, ymax)


def compile_points_mask(predicate: Predicate,
                        columns: Mapping[str, int]
                        ) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a predicate against a point-array column layout.

    ``columns`` maps column names to positions in an ``(n, d)`` point
    array (a ladder rung stores exactly the plotted pair, so the
    service passes ``{x: 0, y: 1}``).  Returns ``f(points) -> mask``;
    a predicate naming any column outside the layout raises
    :class:`SchemaError` here, at compile time, not mid-walk.
    """
    def column_of(name: str) -> int:
        try:
            return int(columns[name])
        except KeyError:
            raise SchemaError(
                f"predicate column {name!r} is not filterable here; "
                f"available columns: {sorted(columns)}"
            ) from None

    if isinstance(predicate, Between):
        j = column_of(predicate.column)
        lo, hi = predicate.lo, predicate.hi
        return lambda pts: (pts[:, j] >= lo) & (pts[:, j] <= hi)
    if isinstance(predicate, Compare):
        j = column_of(predicate.column)
        op = Compare._OPS[predicate.op]
        value = predicate.value
        return lambda pts: op(pts[:, j], value)
    if isinstance(predicate, And):
        left = compile_points_mask(predicate.left, columns)
        right = compile_points_mask(predicate.right, columns)
        return lambda pts: left(pts) & right(pts)
    if isinstance(predicate, Or):
        left = compile_points_mask(predicate.left, columns)
        right = compile_points_mask(predicate.right, columns)
        return lambda pts: left(pts) | right(pts)
    if isinstance(predicate, Not):
        inner = compile_points_mask(predicate.inner, columns)
        return lambda pts: ~inner(pts)
    raise SchemaError(
        f"cannot compile predicate {predicate!r} for point arrays"
    )


#: One comparison term of the compact query-string syntax.
_TERM_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_.-]*)\s*(<=|>=|==|!=|<|>)\s*"
    r"([-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*$"
)


def _predicate_from_spec(spec) -> Predicate:
    """One node of the JSON predicate syntax → the algebra."""
    if not isinstance(spec, Mapping):
        raise SchemaError(
            f"predicate spec must be a JSON object, got {spec!r}"
        )
    combinators = [k for k in ("and", "or", "not") if k in spec]
    if combinators:
        if len(spec) != 1:
            raise SchemaError(
                f"combinator spec must hold exactly one key, got "
                f"{sorted(spec)}"
            )
        kind = combinators[0]
        if kind == "not":
            return ~_predicate_from_spec(spec["not"])
        parts = spec[kind]
        if not isinstance(parts, (list, tuple)) or len(parts) < 1:
            raise SchemaError(
                f"{kind!r} needs a non-empty array of predicates"
            )
        out = _predicate_from_spec(parts[0])
        for part in parts[1:]:
            inner = _predicate_from_spec(part)
            out = (out & inner) if kind == "and" else (out | inner)
        return out
    column = spec.get("col") or spec.get("column")
    if not isinstance(column, str) or not column:
        raise SchemaError(f"predicate spec needs a 'col' name: {spec!r}")
    if "between" in spec:
        bounds = spec["between"]
        if (not isinstance(bounds, (list, tuple)) or len(bounds) != 2):
            raise SchemaError(
                f"'between' needs [lo, hi], got {bounds!r}"
            )
        return Between(column, float(bounds[0]), float(bounds[1]))
    op = spec.get("op")
    if op not in Compare._OPS:
        raise SchemaError(
            f"predicate spec needs 'op' in {sorted(Compare._OPS)} or "
            f"'between': {spec!r}"
        )
    if "value" not in spec:
        raise SchemaError(f"predicate spec needs a 'value': {spec!r}")
    return Compare(column, op, float(spec["value"]))


def parse_predicate(raw) -> Predicate:
    """The service's wire syntax → a :class:`Predicate`.

    Accepts either a JSON object (``{"col": "a", "op": ">=",
    "value": 0.5}``, ``{"col": "a", "between": [0, 1]}``, composed via
    ``{"and": [...]}`` / ``{"or": [...]}`` / ``{"not": ...}``) — as a
    mapping or a string starting with ``{`` — or the compact query
    form ``a>=0.5,b<2`` where a comma means AND.  Malformed input
    raises :class:`SchemaError` (HTTP 400 at the service boundary).
    """
    if isinstance(raw, Mapping):
        return _predicate_from_spec(raw)
    if not isinstance(raw, str) or not raw.strip():
        raise SchemaError(f"empty predicate: {raw!r}")
    text = raw.strip()
    if text.startswith("{"):
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"predicate is not valid JSON: {exc}"
            ) from None
        return _predicate_from_spec(spec)
    out: Predicate | None = None
    for term in text.split(","):
        match = _TERM_RE.match(term)
        if match is None:
            raise SchemaError(
                f"cannot parse predicate term {term.strip()!r}; expected "
                "'column <op> number' with <op> in "
                f"{sorted(Compare._OPS)}"
            )
        column, op, value = match.groups()
        comparison = Compare(column, op, float(value))
        out = comparison if out is None else (out & comparison)
    return out
