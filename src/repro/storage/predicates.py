"""Filter predicates over table rows.

Visualization queries filter on continuous ranges (the zoom window maps
to a conjunction of two between-predicates — exactly the workload §III
says uniform/stratified sampling serves poorly).  The predicate algebra
here covers what those queries need: range, comparison, equality, and
boolean combinators, each compiling to a vectorised boolean mask.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from .table import Table


class Predicate(abc.ABC):
    """A row filter; evaluates to a boolean mask over a table."""

    @abc.abstractmethod
    def mask(self, table: "Table") -> np.ndarray:
        """``(len(table),)`` boolean mask of matching rows."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Between(Predicate):
    """``lo <= column <= hi`` (closed interval)."""

    def __init__(self, column: str, lo: float, hi: float) -> None:
        if lo > hi:
            raise SchemaError(f"between bounds inverted: [{lo}, {hi}]")
        self.column = column
        self.lo = lo
        self.hi = hi

    def mask(self, table: "Table") -> np.ndarray:
        values = table.column(self.column).values
        return (values >= self.lo) & (values <= self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Between({self.column!r}, {self.lo}, {self.hi})"


class Compare(Predicate):
    """``column <op> value`` for op in <, <=, >, >=, ==, !=."""

    _OPS = {
        "<": np.less, "<=": np.less_equal,
        ">": np.greater, ">=": np.greater_equal,
        "==": np.equal, "!=": np.not_equal,
    }

    def __init__(self, column: str, op: str, value) -> None:
        if op not in self._OPS:
            raise SchemaError(
                f"unknown operator {op!r}; expected one of {sorted(self._OPS)}"
            )
        self.column = column
        self.op = op
        self.value = value

    def mask(self, table: "Table") -> np.ndarray:
        values = table.column(self.column).values
        return self._OPS[self.op](values, self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compare({self.column!r} {self.op} {self.value!r})"


class And(Predicate):
    """Conjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: "Table") -> np.ndarray:
        return self.left.mask(table) & self.right.mask(table)


class Or(Predicate):
    """Disjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: "Table") -> np.ndarray:
        return self.left.mask(table) | self.right.mask(table)


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.inner.mask(table)


def viewport_predicate(x_column: str, y_column: str,
                       xmin: float, ymin: float,
                       xmax: float, ymax: float) -> Predicate:
    """The zoom-window filter: two conjunctive between-predicates."""
    return Between(x_column, xmin, xmax) & Between(y_column, ymin, ymax)
