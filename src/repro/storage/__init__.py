"""Storage substrate: the mini column-store RDBMS of the Fig 3 model.

Tables with typed columns, a predicate algebra for zoom filters,
chunked scans for samplers, and a :class:`SampleStore` implementing the
paper's offline-sample + latency-budget deployment (§II-B, §II-D).
"""

from .column import Column, ColumnType, FLOAT64, INT64, STRING
from .database import Database
from .persist import (
    FORMAT_VERSION,
    append_table,
    compact_table,
    content_hash_arrays,
    load_sample_result,
    load_table_manifest,
    open_database,
    open_sample_store,
    open_table,
    rolling_content_hash,
    save_database,
    save_sample_result,
    save_sample_store,
    save_table,
    table_content_hash,
    table_storage_stats,
)
from .predicates import (
    And,
    Between,
    Compare,
    Not,
    Or,
    Predicate,
    compile_points_mask,
    parse_predicate,
    viewport_predicate,
)
from .query import VizQuery, VizResult, ZoomQuery, answer_zoom_query
from .samples import SampleKey, SampleStore, points_for_budget
from .table import Table
from .zoom import (
    DEFAULT_K_PER_TILE,
    DEFAULT_LEVELS,
    ZoomLadder,
    ZoomLevel,
    build_zoom_ladder,
    patch_zoom_ladder,
)

__all__ = [
    "And",
    "Between",
    "Column",
    "ColumnType",
    "Compare",
    "Database",
    "DEFAULT_K_PER_TILE",
    "DEFAULT_LEVELS",
    "FLOAT64",
    "FORMAT_VERSION",
    "INT64",
    "append_table",
    "compact_table",
    "content_hash_arrays",
    "rolling_content_hash",
    "load_sample_result",
    "load_table_manifest",
    "table_storage_stats",
    "open_database",
    "open_sample_store",
    "open_table",
    "save_database",
    "save_sample_result",
    "save_sample_store",
    "save_table",
    "table_content_hash",
    "Not",
    "Or",
    "Predicate",
    "SampleKey",
    "SampleStore",
    "STRING",
    "Table",
    "VizQuery",
    "VizResult",
    "ZoomLadder",
    "ZoomLevel",
    "ZoomQuery",
    "answer_zoom_query",
    "build_zoom_ladder",
    "compile_points_mask",
    "parse_predicate",
    "patch_zoom_ladder",
    "points_for_budget",
    "viewport_predicate",
]
