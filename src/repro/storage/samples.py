"""The sample store: pre-built samples and latency-driven selection.

§II-B and §II-D of the paper describe the deployment model: samples are
built **offline** at several sizes and stored in the database; at query
time "VAS chooses an appropriate sample size by converting the
specified time bound into the number of tuples that can likely be
processed within that time bound".  :class:`SampleStore` implements
both halves:

* registration of samples keyed by (table, x column, y column, method),
  several sizes per key;
* :meth:`SampleStore.for_time_budget` — pick the largest stored sample
  whose predicted visualization time fits the budget, given a
  seconds-per-point rate (calibrated by :mod:`repro.perf.cost_model`);
* registration of multi-resolution zoom ladders
  (:mod:`repro.storage.zoom`) under the same keys, one ladder per
  (table, columns, method), for the interactive viewport workload.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import ConfigurationError, SampleNotFoundError
from ..sampling.base import SampleResult


def points_for_budget(time_budget_seconds: float,
                      seconds_per_point: float,
                      fixed_overhead_seconds: float = 0.0) -> int:
    """Convert a latency budget into a point budget (the §II-D rule).

    ``max(0, (budget - overhead) / rate)``, floored to an int.
    """
    if time_budget_seconds < 0:
        raise ConfigurationError(
            f"time budget must be >= 0, got {time_budget_seconds}"
        )
    if seconds_per_point <= 0:
        raise ConfigurationError(
            f"seconds_per_point must be positive, got {seconds_per_point}"
        )
    usable = time_budget_seconds - fixed_overhead_seconds
    if usable <= 0:
        return 0
    return int(usable / seconds_per_point)


@dataclass(frozen=True)
class SampleKey:
    """Identifies a family of samples: table, column pair and method."""

    table: str
    x_column: str
    y_column: str
    method: str


@dataclass
class _SizeLadder:
    """Samples of one key ordered by size, for bisect selection."""

    sizes: list[int] = field(default_factory=list)
    samples: dict[int, SampleResult] = field(default_factory=dict)

    def add(self, result: SampleResult) -> None:
        size = len(result)
        if size in self.samples:
            # Replacing an existing rung is allowed (rebuilds).
            self.samples[size] = result
            return
        bisect.insort(self.sizes, size)
        self.samples[size] = result

    def largest_at_most(self, max_size: int) -> SampleResult | None:
        idx = bisect.bisect_right(self.sizes, max_size)
        if idx == 0:
            return None
        return self.samples[self.sizes[idx - 1]]

    def smallest(self) -> SampleResult | None:
        if not self.sizes:
            return None
        return self.samples[self.sizes[0]]


class SampleStore:
    """Registry of offline-built samples, the RDBMS-side half of VAS."""

    def __init__(self) -> None:
        self._ladders: dict[SampleKey, _SizeLadder] = {}
        self._zoom_ladders: dict[SampleKey, object] = {}

    def __len__(self) -> int:
        return sum(len(ladder.sizes) for ladder in self._ladders.values())

    # -- zoom ladders ------------------------------------------------------
    def add_zoom_ladder(self, table: str, x_column: str, y_column: str,
                        ladder) -> None:
        """Register a prebuilt :class:`~repro.storage.zoom.ZoomLadder`.

        One ladder per (table, columns, method); re-registering
        replaces (rebuilds are allowed, like flat sample rungs).
        """
        key = SampleKey(table, x_column, y_column, ladder.method)
        self._zoom_ladders[key] = ladder

    def zoom_ladder(self, table: str, x_column: str, y_column: str,
                    method: str = "vas"):
        """The stored ladder, or :class:`SampleNotFoundError`."""
        key = SampleKey(table, x_column, y_column, method)
        try:
            return self._zoom_ladders[key]
        except KeyError:
            raise SampleNotFoundError(
                f"no {method!r} zoom ladder for "
                f"{table}.({x_column}, {y_column})"
            ) from None

    def add(self, table: str, x_column: str, y_column: str,
            result: SampleResult) -> None:
        """Register one built sample under its table/columns/method."""
        key = SampleKey(table, x_column, y_column, result.method)
        self._ladders.setdefault(key, _SizeLadder()).add(result)

    def sizes(self, table: str, x_column: str, y_column: str,
              method: str) -> list[int]:
        """Stored sizes for a key (empty when nothing is registered)."""
        ladder = self._ladders.get(SampleKey(table, x_column, y_column, method))
        return list(ladder.sizes) if ladder else []

    def get(self, table: str, x_column: str, y_column: str,
            method: str, size: int) -> SampleResult:
        """The exact stored sample, or :class:`SampleNotFoundError`."""
        ladder = self._ladders.get(SampleKey(table, x_column, y_column, method))
        if ladder is None or size not in ladder.samples:
            raise SampleNotFoundError(
                f"no {method!r} sample of size {size} for "
                f"{table}.({x_column}, {y_column})"
            )
        return ladder.samples[size]

    def for_point_budget(self, table: str, x_column: str, y_column: str,
                         method: str, max_points: int) -> SampleResult:
        """Largest stored sample with at most ``max_points`` rows.

        Falls back to the smallest stored sample when even it exceeds
        the budget (an over-budget plot beats no plot — the same choice
        a dashboard makes), and raises when nothing is stored at all.
        """
        ladder = self._ladders.get(SampleKey(table, x_column, y_column, method))
        if ladder is None or not ladder.sizes:
            raise SampleNotFoundError(
                f"no {method!r} samples for {table}.({x_column}, {y_column})"
            )
        chosen = ladder.largest_at_most(max_points)
        if chosen is None:
            chosen = ladder.smallest()
        assert chosen is not None
        return chosen

    def for_time_budget(self, table: str, x_column: str, y_column: str,
                        method: str, time_budget_seconds: float,
                        seconds_per_point: float,
                        fixed_overhead_seconds: float = 0.0) -> SampleResult:
        """The §II-D rule end-to-end: budget → points → stored sample."""
        max_points = points_for_budget(
            time_budget_seconds, seconds_per_point, fixed_overhead_seconds
        )
        return self.for_point_budget(table, x_column, y_column, method,
                                     max_points)

    # -- persistence -------------------------------------------------------
    def save(self, directory) -> None:
        """Write every rung and ladder as a workspace-format directory."""
        from .persist import save_sample_store

        save_sample_store(self, directory)

    @classmethod
    def open(cls, directory) -> "SampleStore":
        """Load a store written by :meth:`save`."""
        from .persist import open_sample_store

        return open_sample_store(directory)
