"""Tables: named collections of equal-length columns.

A :class:`Table` supports exactly the operations the paper's
visualization workload issues against the RDBMS (Fig 3): projection,
predicate filtering, chunked scans (what samplers consume), and
extraction of an ``(N, 2)`` coordinate pair for plotting.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from .column import Column, ColumnType, FLOAT64, INT64, STRING
from .predicates import Predicate


def _infer_type(values: np.ndarray) -> ColumnType:
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        return FLOAT64
    if arr.dtype.kind in ("i", "u"):
        return INT64
    if arr.dtype.kind in ("U", "S", "O"):
        return STRING
    raise SchemaError(f"cannot infer a column type for dtype {arr.dtype}")


class Table:
    """An immutable, in-memory, column-oriented table.

    Construct from :class:`Column` objects or via :meth:`from_arrays`.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError("a table needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise SchemaError(f"column lengths differ: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        self.name = name
        self._columns = {c.name: c for c in columns}
        self._order = names
        self._length = lengths.pop()

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_arrays(cls, name: str,
                    arrays: Mapping[str, np.ndarray]) -> "Table":
        """Build a table from a ``{column: array}`` mapping.

        Column types are inferred from dtypes.
        """
        columns = [
            Column(col_name, _infer_type(values), np.asarray(values))
            for col_name, values in arrays.items()
        ]
        return cls(name, columns)

    # -- metadata -----------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._order)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {self._order}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    @property
    def segment_count(self) -> int:
        """The widest column's physical chunk count (1 = consolidated).

        Live-table appends push one in-memory segment per column per
        append; this is what the service's storage stats (and the
        ephemeral workspace's compaction trigger) observe.
        """
        return max(self._columns[n].segment_count for n in self._order)

    def consolidate(self) -> "Table":
        """Fuse every column's segments into one contiguous array.

        The in-memory mirror of on-disk compaction: after a burst of
        O(delta) appends, one O(N) pass restores single-chunk columns
        (and each column caches the result, so this is idempotent).
        Returns ``self`` for chaining.
        """
        for name in self._order:
            self._columns[name].values  # noqa: B018 - consolidating access
        return self

    # -- relational operations --------------------------------------------------
    def project(self, names: Sequence[str]) -> "Table":
        """A table with only the given columns (in the given order)."""
        return Table(self.name, [self.column(n) for n in names])

    def filter(self, predicate: Predicate) -> "Table":
        """Rows matching ``predicate``."""
        mask = predicate.mask(self)
        indices = np.nonzero(mask)[0]
        return self.take(indices)

    def take(self, indices: np.ndarray) -> "Table":
        """A table with the given row subset (by position)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(self.name, [self._columns[n].take(indices)
                                 for n in self._order])

    def head(self, n: int) -> "Table":
        """The first ``n`` rows."""
        return Table(self.name, [self._columns[c].slice(0, n)
                                 for c in self._order])

    def with_appended(self, arrays: Mapping[str, np.ndarray]) -> "Table":
        """A new table with the given rows appended.

        ``arrays`` must cover exactly this table's columns; values are
        coerced to the declared column types.  The table itself stays
        immutable — appendable *storage* is built on top of this in
        :mod:`repro.storage.persist` / the service workspace.
        """
        if set(arrays) != set(self._order):
            raise SchemaError(
                f"append columns {sorted(arrays)} do not match table "
                f"columns {self._order}"
            )
        return Table(self.name, [
            self._columns[n].extended(np.asarray(arrays[n]))
            for n in self._order
        ])

    # -- scans ----------------------------------------------------------------
    def scan(self, x_column: str, y_column: str,
             chunk_size: int = 65536) -> Iterator[np.ndarray]:
        """Chunked scan yielding ``(n_i, 2)`` coordinate chunks.

        This is the stream samplers consume: the paper's offline
        sampling pass is exactly one such scan.
        """
        if chunk_size < 1:
            raise SchemaError(f"chunk_size must be >= 1, got {chunk_size}")
        xs = self.column(x_column).values
        ys = self.column(y_column).values
        if not (self.column(x_column).ctype.is_numeric
                and self.column(y_column).ctype.is_numeric):
            raise SchemaError("scan requires numeric x/y columns")
        for start in range(0, self._length, chunk_size):
            stop = min(start + chunk_size, self._length)
            yield np.stack(
                [xs[start:stop].astype(np.float64),
                 ys[start:stop].astype(np.float64)], axis=1,
            )

    def xy(self, x_column: str, y_column: str) -> np.ndarray:
        """The full ``(N, 2)`` coordinate projection."""
        xs = self.column(x_column).values.astype(np.float64)
        ys = self.column(y_column).values.astype(np.float64)
        return np.stack([xs, ys], axis=1)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """A ``{column: array}`` copy of the table contents."""
        return {n: self._columns[n].values.copy() for n in self._order}

    # -- persistence -----------------------------------------------------
    def save(self, directory) -> str:
        """Write this table as a columnar directory; returns its
        content hash (see :mod:`repro.storage.persist`)."""
        from .persist import save_table

        return save_table(self, directory)

    @classmethod
    def open(cls, directory) -> "Table":
        """Load a table written by :meth:`save`."""
        from .persist import open_table

        return open_table(directory)

    @property
    def content_hash(self) -> str:
        """sha256 identity of schema + values (cache key material)."""
        from .persist import table_content_hash

        return table_content_hash(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._length}, cols={self._order})"
