"""Multi-resolution zoom ladders: precomputed VAS samples per zoom level.

The paper's headline interaction is zooming and panning over a very
large scatter/map plot (Fig 1): one stored sample must look good at the
overview *and* keep enough local detail when the user dives in.  A
single K-point sample cannot do both at extreme zoom — after a 64×
area zoom only ~K/64 of its points remain visible.  This module
implements the natural extension: an **offline ladder of samples**, one
rung per zoom level.

* Level ``ℓ`` splits the root viewport into ``2^ℓ × 2^ℓ`` tiles and
  runs VAS (batched engine by default) with up to ``k_per_tile`` points
  *inside every occupied tile*, so each doubling of zoom doubles the
  linear detail available.
* Each level's union sample is indexed with a
  :class:`~repro.index.grid.GridIndex`, so a viewport query is a bbox
  probe — no Interchange runs at query time.
* A viewport request picks the level whose tile grain matches the
  viewport extent (finer on demand via ``max_points``) and returns the
  sample points inside the window.

Ladders serialise to a single ``.npz`` file (:meth:`ZoomLadder.save` /
:meth:`ZoomLadder.load`), register in the
:class:`~repro.storage.samples.SampleStore` next to the flat sample
rungs, and are served through
:func:`repro.storage.query.answer_zoom_query` and the
``repro zoom-build`` / ``repro zoom-query`` CLI commands.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, EmptyDatasetError, StorageError
from ..geometry import as_points
from ..index import GridIndex, choose_cell_size
from ..viz.scatter import Viewport

#: Default rungs in a ladder: levels 0..3 (1, 4, 16, 64 tiles).
DEFAULT_LEVELS = 4

#: Default sample budget per occupied tile.
DEFAULT_K_PER_TILE = 256


@dataclass
class ZoomLevel:
    """One rung of the ladder: the union of per-tile samples.

    Attributes
    ----------
    level:
        Zoom depth; the root viewport is cut into ``2^level`` tiles per
        axis.
    points / indices:
        The level's sample and the dataset rows it came from.
    tile_ids:
        ``(len(points),)`` flattened tile number of every sample point
        (``iy * 2^level + ix``), kept for statistics and tests.
    """

    level: int
    points: np.ndarray
    indices: np.ndarray
    tile_ids: np.ndarray
    _index: GridIndex | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.points = as_points(self.points)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.tile_ids = np.asarray(self.tile_ids, dtype=np.int64)
        if not (len(self.points) == len(self.indices) == len(self.tile_ids)):
            raise ConfigurationError(
                "zoom level arrays disagree: "
                f"{len(self.points)} points, {len(self.indices)} indices, "
                f"{len(self.tile_ids)} tile ids"
            )

    @property
    def tiles_per_axis(self) -> int:
        return 1 << self.level

    @property
    def index(self) -> GridIndex:
        """Lazily built spatial index over the level's sample points."""
        if self._index is None:
            idx = GridIndex(cell_size=choose_cell_size(self.points))
            idx.insert_many(np.arange(len(self.points)), self.points)
            self._index = idx
        return self._index

    def query_viewport(self, viewport: Viewport,
                       point_mask=None) -> np.ndarray:
        """Positions (into this level's arrays) inside ``viewport``.

        ``point_mask`` — an ``(n, 2) -> bool mask`` callable — is
        pushed into the grid walk, so a filtered query masks each tile
        during the probe rather than post-filtering the result.
        """
        hits = self.index.query_bbox(viewport.xmin, viewport.ymin,
                                     viewport.xmax, viewport.ymax,
                                     point_mask=point_mask)
        return np.asarray(sorted(hits), dtype=np.int64)


@dataclass
class ZoomLadder:
    """A full multi-resolution sample ladder for one (table, x, y) pair.

    Built offline by :func:`build_zoom_ladder`; answers viewport
    queries without touching the base data.
    """

    root: Viewport
    levels: list[ZoomLevel]
    k_per_tile: int
    method: str = "vas"

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    def level_for(self, viewport: Viewport) -> int:
        """The rung whose tile grain matches a viewport's extent.

        A viewport covering ``1/2^ℓ`` of the root span per axis is best
        served by level ``ℓ``: it sees ~1 tile, i.e. ~``k_per_tile``
        points.  The fraction is clamped to the ladder's depth.
        """
        frac = max(viewport.width / self.root.width,
                   viewport.height / self.root.height)
        if frac <= 0:
            return self.max_level
        level = int(np.floor(-np.log2(max(frac, 1e-12)) + 0.5))
        return int(np.clip(level, 0, self.max_level))

    def query(self, viewport: Viewport, zoom: int | None = None,
              max_points: int | None = None,
              point_mask=None
              ) -> tuple[np.ndarray, np.ndarray, int]:
        """Answer a viewport request from the stored ladder.

        Parameters
        ----------
        viewport:
            The data-space window to populate.
        zoom:
            Explicit rung; ``None`` picks :meth:`level_for`.
        max_points:
            Optional response budget: the chosen level is demoted rung
            by rung until the answer fits (level 0 is returned even
            when it does not — an over-budget plot beats no plot).
        point_mask:
            Optional filter pushed into each rung's tile walk (see
            :meth:`ZoomLevel.query_viewport`).  The demotion loop
            counts *filtered* hits, so a selective predicate keeps a
            finer rung within the same point budget.

        Returns
        -------
        ``(points, source_indices, level)`` — the rows inside the
        viewport and the rung that served them.
        """
        if zoom is None:
            level = self.level_for(viewport)
        else:
            if not (0 <= zoom <= self.max_level):
                raise ConfigurationError(
                    f"zoom {zoom} outside ladder range [0, {self.max_level}]"
                )
            level = int(zoom)
        while True:
            rung = self.levels[level]
            pos = rung.query_viewport(viewport, point_mask=point_mask)
            if max_points is not None and len(pos) > max_points and level > 0:
                level -= 1
                continue
            return rung.points[pos], rung.indices[pos], level

    # -- persistence -------------------------------------------------------
    def save(self, path) -> None:
        """Serialise the ladder to one ``.npz`` file (numpy only)."""
        payload: dict[str, np.ndarray] = {
            "meta": np.array([self.root.xmin, self.root.ymin,
                              self.root.xmax, self.root.ymax,
                              float(len(self.levels)),
                              float(self.k_per_tile)], dtype=np.float64),
            "method": np.array([self.method]),
        }
        for rung in self.levels:
            payload[f"level{rung.level}_points"] = rung.points
            payload[f"level{rung.level}_indices"] = rung.indices
            payload[f"level{rung.level}_tiles"] = rung.tile_ids
        # Write through a file handle: np.savez on a *path* silently
        # appends ".npz", so the caller's reported filename would lie.
        with open(path, "wb") as fh:
            np.savez(fh, **payload)

    @classmethod
    def load(cls, path) -> "ZoomLadder":
        """Load a ladder written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            meta = data["meta"]
            root = Viewport(float(meta[0]), float(meta[1]),
                            float(meta[2]), float(meta[3]))
            n_levels = int(meta[4])
            method = str(data["method"][0])
            levels = [
                ZoomLevel(
                    level=lv,
                    points=data[f"level{lv}_points"],
                    indices=data[f"level{lv}_indices"],
                    tile_ids=data[f"level{lv}_tiles"],
                )
                for lv in range(n_levels)
            ]
        return cls(root=root, levels=levels,
                   k_per_tile=int(meta[5]), method=method)

    def stats(self) -> list[dict]:
        """Per-level summary used by the CLI and the benchmark."""
        out = []
        for rung in self.levels:
            occupied = len(np.unique(rung.tile_ids))
            out.append({
                "level": rung.level,
                "tiles": occupied,
                "points": int(len(rung.points)),
            })
        return out


def patch_zoom_ladder(ladder: ZoomLadder, points: np.ndarray,
                      indices: np.ndarray) -> tuple[ZoomLadder, dict]:
    """Online ladder maintenance: fold appended rows into every rung.

    The offline builder's invariant — at most ``k_per_tile`` sample
    points per tile — is preserved by construction: each appended row
    joins the tiles (one per level) that still have budget, in append
    order, and is skipped where the tile is already full.  Empty tiles
    (a brand-new data region) therefore get covered immediately, which
    is exactly what a viewport query over freshly appended territory
    needs, while dense tiles accrue *staleness* instead of being
    re-sampled — re-running VAS inside a full tile is offline work by
    design, and the skip counts tell the service when to flag the
    ladder for that rebuild.

    The root viewport is fixed at build time; rows landing outside it
    clamp into the border tiles (the same clamp the builder applies to
    edge points).  Such rows are counted in the returned stats'
    ``out_of_root`` — a ladder receiving them cannot represent the new
    extent until an offline rebuild re-fits the root, which is what
    the service's staleness flag reports.  Returns ``(new ladder,
    stats)`` — the input ladder is never mutated — where ``stats`` has
    per-level ``applied`` / ``skipped`` counts and their totals.
    """
    pts = as_points(points)
    idx = np.asarray(indices, dtype=np.int64)
    if len(pts) != len(idx):
        raise ConfigurationError(
            f"patch arrays disagree: {len(pts)} points, {len(idx)} indices"
        )
    root = ladder.root
    out_of_root = int(np.sum(
        (pts[:, 0] < root.xmin) | (pts[:, 0] > root.xmax)
        | (pts[:, 1] < root.ymin) | (pts[:, 1] > root.ymax)
    )) if len(pts) else 0
    levels = []
    per_level = []
    total_applied = 0
    total_skipped = 0
    for rung in ladder.levels:
        if len(pts) == 0:
            per_level.append({"level": rung.level, "applied": 0,
                              "skipped": 0})
            levels.append(rung)  # unchanged rungs are shared, not copied
            continue
        tiles = _tile_of(pts, ladder.root, rung.tiles_per_axis)
        # Vectorized first-come-first-kept per tile: a stable sort
        # groups the delta by tile while preserving append order, the
        # within-group rank says how many earlier delta rows target
        # the same tile, and a row survives iff rank < remaining
        # budget (k_per_tile minus the tile's current occupancy).
        # Identical keep set to the per-point scan, no Python loop.
        order = np.argsort(tiles, kind="stable")
        sorted_tiles = tiles[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_tiles[1:] != sorted_tiles[:-1]])
        group_sizes = np.diff(np.r_[starts, len(sorted_tiles)])
        rank = np.arange(len(sorted_tiles)) - np.repeat(starts,
                                                        group_sizes)
        uniq, counts = np.unique(rung.tile_ids, return_counts=True)
        slot = np.searchsorted(uniq, sorted_tiles)
        slot_clipped = np.minimum(slot, max(len(uniq) - 1, 0))
        occupied = np.where(
            (slot < len(uniq)) & (uniq[slot_clipped] == sorted_tiles),
            counts[slot_clipped], 0) if len(uniq) else np.zeros(
                len(sorted_tiles), dtype=np.int64)
        keep = np.zeros(len(pts), dtype=bool)
        keep[order] = rank < (ladder.k_per_tile - occupied)
        applied = int(keep.sum())
        skipped = len(pts) - applied
        total_applied += applied
        total_skipped += skipped
        per_level.append({"level": rung.level, "applied": applied,
                          "skipped": skipped})
        if applied == 0:
            levels.append(rung)  # unchanged rungs are shared, not copied
            continue
        levels.append(ZoomLevel(
            level=rung.level,
            points=np.concatenate([rung.points, pts[keep]], axis=0),
            indices=np.concatenate([rung.indices, idx[keep]]),
            tile_ids=np.concatenate([rung.tile_ids, tiles[keep]]),
        ))
    patched = ZoomLadder(root=ladder.root, levels=levels,
                         k_per_tile=ladder.k_per_tile, method=ladder.method)
    return patched, {"applied": total_applied, "skipped": total_skipped,
                     "out_of_root": out_of_root, "levels": per_level}


def _tile_of(points: np.ndarray, root: Viewport,
             tiles_per_axis: int) -> np.ndarray:
    """Flattened tile number of every point (edge points clamp inward)."""
    fx = (points[:, 0] - root.xmin) / root.width
    fy = (points[:, 1] - root.ymin) / root.height
    ix = np.clip((fx * tiles_per_axis).astype(np.int64), 0,
                 tiles_per_axis - 1)
    iy = np.clip((fy * tiles_per_axis).astype(np.int64), 0,
                 tiles_per_axis - 1)
    return iy * tiles_per_axis + ix


def build_zoom_ladder(
    points: np.ndarray,
    levels: int = DEFAULT_LEVELS,
    k_per_tile: int = DEFAULT_K_PER_TILE,
    sampler_factory=None,
    rng: int | np.random.Generator | None = 0,
    method: str = "vas",
) -> ZoomLadder:
    """Precompute a zoom ladder over an in-memory dataset.

    Parameters
    ----------
    points:
        ``(N, 2)`` dataset.
    levels:
        Rung count; level ``ℓ`` uses ``2^ℓ × 2^ℓ`` tiles.
    k_per_tile:
        VAS sample size per occupied tile (tiles with fewer rows keep
        them all).
    sampler_factory:
        ``f(seed) -> Sampler`` override; the default builds a
        :class:`~repro.core.vas.VASSampler` on the batched engine.
        Each tile gets a distinct deterministic seed.
    rng:
        Base seed for the per-tile samplers.
    method:
        Method label stored with the ladder.
    """
    pts = as_points(points)
    if len(pts) == 0:
        raise EmptyDatasetError("cannot build a zoom ladder over no points")
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    if k_per_tile < 1:
        raise ConfigurationError(
            f"k_per_tile must be >= 1, got {k_per_tile}"
        )
    if sampler_factory is None:
        from ..core.vas import VASSampler

        def sampler_factory(seed):  # noqa: F811 - intentional default
            return VASSampler(rng=seed, engine="batched")

    base_seed = int(np.random.default_rng(rng).integers(0, 2**31 - 1))
    root = Viewport.fit(pts, margin=1e-9)
    rungs: list[ZoomLevel] = []
    for level in range(levels):
        tpa = 1 << level
        tile_of_row = _tile_of(pts, root, tpa)
        sel_points: list[np.ndarray] = []
        sel_indices: list[np.ndarray] = []
        sel_tiles: list[np.ndarray] = []
        # Group rows by tile in one O(N log N) sort instead of one
        # full-array scan per tile (4^level scans otherwise).  The
        # stable sort keeps rows in dataset order within each tile.
        order = np.argsort(tile_of_row, kind="stable")
        sorted_tiles = tile_of_row[order]
        boundaries = np.flatnonzero(np.diff(sorted_tiles)) + 1
        for rows in np.split(order, boundaries):
            tile = int(tile_of_row[rows[0]])
            if len(rows) <= k_per_tile:
                chosen = rows
                chosen_pts = pts[rows]
            else:
                sampler = sampler_factory(base_seed + 7919 * level + int(tile))
                result = sampler.sample(pts[rows], k_per_tile)
                chosen = rows[result.indices]
                chosen_pts = result.points
            sel_points.append(chosen_pts)
            sel_indices.append(chosen)
            sel_tiles.append(np.full(len(chosen), int(tile), dtype=np.int64))
        rungs.append(ZoomLevel(
            level=level,
            points=np.concatenate(sel_points, axis=0),
            indices=np.concatenate(sel_indices),
            tile_ids=np.concatenate(sel_tiles),
        ))
    return ZoomLadder(root=root, levels=rungs, k_per_tile=int(k_per_tile),
                      method=method)


# -- per-tile extraction + wire codec ------------------------------------
#
# The ``repro`` binary tile format ("RVT1"), little-endian throughout:
#
# ======  =====  ==================================================
# offset  bytes  field
# ======  =====  ==================================================
# 0       4      magic ``b"RVT1"``
# 4       2      format version (uint16, currently 1)
# 6       2      reserved flags (uint16, 0)
# 8       4      ladder level (uint32)
# 12      4      tile x (uint32)
# 16      4      tile y (uint32)
# 20      4      point count ``n`` (uint32)
# 24      32     tile bounds x0, y0, x1, y1 (4 × float64)
# 56      2n     quantized x offsets (n × uint16)
# 56+2n   2n     quantized y offsets (n × uint16)
# ======  =====  ==================================================
#
# Coordinates are stored as uint16 offsets into the tile's own bounds:
# ``q = round((v - lo) / (hi - lo) * 65535)``, decoded as
# ``v = lo + q * (hi - lo) / 65535``.  Worst-case round-trip error is
# half a quantization step per axis — ``(hi - lo) / (2 * 65535)``,
# i.e. ~1/130000 of the tile span — which is below one canvas pixel
# for any plausible tile raster.  4 bytes/point versus ~40 for JSON
# floats.  :func:`tile_to_json` round-trips through the same
# quantizer, so the JSON debugging view and a decoded binary tile are
# bit-identical (the bench gate asserts this).

#: Magic prefix of the binary tile format.
TILE_MAGIC = b"RVT1"

#: Current binary tile format version.
TILE_FORMAT_VERSION = 1

#: Largest quantized offset (uint16 full scale).
TILE_QUANT_MAX = 65535

_TILE_HEADER = struct.Struct("<4sHHIIII4d")


@dataclass
class TileData:
    """One extracted ladder tile, ready for the wire codec.

    ``bounds`` is the tile's own data-space box ``(x0, y0, x1, y1)``
    — the slippy-map cut of the ladder root, *not* a fit of the
    points — so a client can place the tile without any metadata
    round-trip.
    """

    level: int
    x: int
    y: int
    bounds: tuple[float, float, float, float]
    points: np.ndarray

    def __post_init__(self) -> None:
        self.points = as_points(self.points) if len(self.points) else \
            np.empty((0, 2), dtype=np.float64)


def tile_bounds(root: Viewport, level: int, x: int,
                y: int) -> tuple[float, float, float, float]:
    """Data-space box of tile ``(x, y)`` at ``level`` of ``root``.

    Computed by multiplication from the root (never by accumulating
    spans), so every client and the encoder agree on the exact floats.
    """
    tpa = 1 << level
    sx = root.width / tpa
    sy = root.height / tpa
    return (root.xmin + x * sx, root.ymin + y * sy,
            root.xmin + (x + 1) * sx, root.ymin + (y + 1) * sy)


def extract_tile(ladder: ZoomLadder, level: int, x: int,
                 y: int) -> TileData:
    """The sample points of one ``(level, x, y)`` tile of a ladder.

    A constant-time mask over the rung's stored ``tile_ids`` — the
    same flattened numbering :func:`_tile_of` assigns at build time —
    so serving a tile never re-bins points.  An empty tile is a valid
    (zero-point) answer, not an error: the client learns the region
    is bare and caches that.
    """
    if not (0 <= level <= ladder.max_level):
        raise ConfigurationError(
            f"level {level} outside ladder range [0, {ladder.max_level}]"
        )
    tpa = 1 << level
    if not (0 <= x < tpa and 0 <= y < tpa):
        raise ConfigurationError(
            f"tile ({x}, {y}) outside level {level} grid "
            f"[0, {tpa}) per axis"
        )
    rung = ladder.levels[level]
    mask = rung.tile_ids == y * tpa + x
    return TileData(level=int(level), x=int(x), y=int(y),
                    bounds=tile_bounds(ladder.root, level, x, y),
                    points=rung.points[mask])


def _quantize(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=np.uint16)
    scaled = np.rint((values - lo) / span * TILE_QUANT_MAX)
    # Border points clamped into the tile by _tile_of can sit exactly
    # on (or marginally past) the edge; clip instead of wrapping.
    return np.clip(scaled, 0, TILE_QUANT_MAX).astype(np.uint16)


def _dequantize(quantized: np.ndarray, lo: float, hi: float) -> np.ndarray:
    span = hi - lo
    return lo + quantized.astype(np.float64) * (span / TILE_QUANT_MAX)


def encode_tile(tile: TileData) -> bytes:
    """Serialise one tile to the documented "RVT1" binary format."""
    x0, y0, x1, y1 = (float(v) for v in tile.bounds)
    n = len(tile.points)
    header = _TILE_HEADER.pack(
        TILE_MAGIC, TILE_FORMAT_VERSION, 0,
        int(tile.level), int(tile.x), int(tile.y), n,
        x0, y0, x1, y1,
    )
    qx = _quantize(tile.points[:, 0], x0, x1)
    qy = _quantize(tile.points[:, 1], y0, y1)
    return header + qx.astype("<u2").tobytes() + qy.astype("<u2").tobytes()


def decode_tile(data: bytes) -> TileData:
    """Parse an "RVT1" payload back into a :class:`TileData`.

    The decoded coordinates are the *quantized* ones — what any
    client sees — not the encoder's input floats.
    """
    if len(data) < _TILE_HEADER.size:
        raise StorageError(
            f"tile payload truncated: {len(data)} bytes < "
            f"{_TILE_HEADER.size}-byte header"
        )
    (magic, version, _flags, level, x, y, n,
     x0, y0, x1, y1) = _TILE_HEADER.unpack_from(data)
    if magic != TILE_MAGIC:
        raise StorageError(f"not a tile payload: magic {magic!r}")
    if version != TILE_FORMAT_VERSION:
        raise StorageError(
            f"unsupported tile format version {version} "
            f"(expected {TILE_FORMAT_VERSION})"
        )
    expected = _TILE_HEADER.size + 4 * n
    if len(data) != expected:
        raise StorageError(
            f"tile payload length {len(data)} != {expected} "
            f"for {n} points"
        )
    offset = _TILE_HEADER.size
    qx = np.frombuffer(data, dtype="<u2", count=n, offset=offset)
    qy = np.frombuffer(data, dtype="<u2", count=n, offset=offset + 2 * n)
    points = np.column_stack([_dequantize(qx, x0, x1),
                              _dequantize(qy, y0, y1)]) if n else \
        np.empty((0, 2), dtype=np.float64)
    return TileData(level=level, x=x, y=y, bounds=(x0, y0, x1, y1),
                    points=points)


def tile_to_json(tile: TileData) -> dict:
    """The ``?format=json`` debugging view of a tile.

    Coordinates pass through the same quantize/dequantize as the
    binary codec, so this payload and ``decode_tile(encode_tile(t))``
    carry bit-identical floats — divergence is a codec bug, and the
    benchmark gate treats it as one.
    """
    x0, y0, x1, y1 = tile.bounds
    qx = _quantize(tile.points[:, 0], x0, x1)
    qy = _quantize(tile.points[:, 1], y0, y1)
    points = np.column_stack([_dequantize(qx, x0, x1),
                              _dequantize(qy, y0, y1)]) if len(qx) else \
        np.empty((0, 2), dtype=np.float64)
    return {
        "level": int(tile.level), "x": int(tile.x), "y": int(tile.y),
        "bounds": [x0, y0, x1, y1],
        "count": int(len(tile.points)),
        "points": points.tolist(),
    }
