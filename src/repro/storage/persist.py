"""On-disk persistence for the storage layer (workspace format v1).

Everything the in-memory column store owns — tables, flat sample
rungs, zoom ladders, whole databases — serialises to one directory
tree of columnar ``.npy`` files plus JSON manifests:

* a **table** is a directory: ``manifest.json`` (schema, row count,
  content hash) next to one ``col_NN.npy`` per column;
* a **sample result** is a directory: ``manifest.json`` (method, size,
  JSON-safe metadata) next to ``points.npy`` / ``indices.npy`` and an
  optional ``weights.npy``;
* a **sample store** is a directory of numbered sample-result
  directories under ``flat/`` plus numbered ``.npz`` ladders (with
  JSON sidecars) under ``zoom/``;
* a **database** is ``tables/`` plus ``samples/`` under one root.

Array payloads are written with ``allow_pickle=False`` end to end, so
opening a workspace never executes pickled code.  Content hashes
(:func:`table_content_hash`) cover column names, logical types and raw
bytes — the :mod:`repro.service` layer keys its build cache on them,
which is what makes "same data + same params = reuse, changed data =
rebuild" work without timestamps or mtime heuristics.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..errors import StorageError
from ..sampling.base import SampleResult
from .column import Column, ColumnType
from .table import Table
from .zoom import ZoomLadder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .samples import SampleStore

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def write_json(path: Path, payload: dict) -> None:
    """Write a manifest atomically enough for a single-writer workspace."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read manifest {path}: {exc}") from exc


def json_safe(mapping: Mapping) -> dict:
    """The JSON-representable subset of a metadata mapping.

    Sample metadata can carry arrays or rich objects (traces); the
    manifest keeps only scalars and strings so a saved workspace stays
    plain JSON.
    """
    out = {}
    for key, value in mapping.items():
        if isinstance(value, (bool, str)) or value is None:
            out[str(key)] = value
        elif isinstance(value, (int, np.integer)):
            out[str(key)] = int(value)
        elif isinstance(value, (float, np.floating)):
            out[str(key)] = float(value)
    return out


# -- content hashing ------------------------------------------------------

def content_hash_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """A sha256 over column names, dtypes and raw bytes.

    The hash is the identity of a dataset for cache purposes: it
    changes iff the schema or the values change, and is independent of
    where the data came from (CSV path, generator, another workspace).
    """
    digest = hashlib.sha256()
    for name in arrays:  # caller-defined order is part of the identity
        arr = np.ascontiguousarray(np.asarray(arrays[name]))
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def table_content_hash(table: Table) -> str:
    """Content hash of a table (column order included)."""
    return content_hash_arrays(
        {n: table.column(n).values for n in table.column_names}
    )


# -- tables ---------------------------------------------------------------

def save_table(table: Table, directory) -> str:
    """Write one table as ``manifest.json`` + ``col_NN.npy`` files.

    Returns the table's content hash (also recorded in the manifest).
    Column files are numbered in schema order because column *names*
    are user data and may not be valid filenames.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    columns = []
    for pos, name in enumerate(table.column_names):
        column = table.column(name)
        filename = f"col_{pos:02d}.npy"
        np.save(root / filename, column.values, allow_pickle=False)
        columns.append({"name": name, "type": column.ctype.name,
                        "file": filename})
    digest = table_content_hash(table)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "table",
        "name": table.name,
        "rows": len(table),
        "columns": columns,
        "content_hash": digest,
    })
    return digest


def open_table(directory) -> Table:
    """Load a table written by :func:`save_table`."""
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    columns = [
        Column(spec["name"], ColumnType(spec["type"]),
               np.load(root / spec["file"], allow_pickle=False))
        for spec in manifest["columns"]
    ]
    return Table(manifest["name"], columns)


# -- sample results -------------------------------------------------------

def save_sample_result(result: SampleResult, directory,
                       extra: dict | None = None) -> None:
    """Write one :class:`SampleResult` as arrays + manifest.

    ``extra`` lets callers (the sample store, the service build cache)
    record context the result itself does not carry — table name,
    column pair, build parameters.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    np.save(root / "points.npy", result.points, allow_pickle=False)
    np.save(root / "indices.npy", result.indices, allow_pickle=False)
    if result.weights is not None:
        np.save(root / "weights.npy", result.weights, allow_pickle=False)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_result",
        "method": result.method,
        "size": len(result),
        "has_weights": result.weights is not None,
        "metadata": json_safe(result.metadata),
        **(extra or {}),
    })


def load_sample_result(directory) -> SampleResult:
    """Load a sample result written by :func:`save_sample_result`."""
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_result":
        raise StorageError(f"{root} is not a saved sample result")
    weights = None
    if manifest.get("has_weights"):
        weights = np.load(root / "weights.npy", allow_pickle=False)
    return SampleResult(
        points=np.load(root / "points.npy", allow_pickle=False),
        indices=np.load(root / "indices.npy", allow_pickle=False),
        weights=weights,
        method=manifest.get("method", ""),
        metadata=dict(manifest.get("metadata", {})),
    )


# -- sample stores --------------------------------------------------------

def save_sample_store(store: "SampleStore", directory) -> None:
    """Write a full store: numbered flat rungs plus numbered ladders."""
    root = Path(directory)
    (root / "flat").mkdir(parents=True, exist_ok=True)
    (root / "zoom").mkdir(parents=True, exist_ok=True)
    entries = []
    counter = 0
    for key, ladder in store._ladders.items():
        for size in ladder.sizes:
            name = f"{counter:04d}"
            save_sample_result(
                ladder.samples[size], root / "flat" / name,
                extra={"table": key.table, "x_column": key.x_column,
                       "y_column": key.y_column},
            )
            entries.append({"dir": name, "table": key.table,
                            "x_column": key.x_column,
                            "y_column": key.y_column,
                            "method": key.method, "size": size})
            counter += 1
    zooms = []
    for pos, (key, zoom) in enumerate(store._zoom_ladders.items()):
        name = f"{pos:04d}.npz"
        zoom.save(root / "zoom" / name)
        zooms.append({"file": name, "table": key.table,
                      "x_column": key.x_column, "y_column": key.y_column,
                      "method": key.method})
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_store",
        "flat": entries,
        "zoom": zooms,
    })


def open_sample_store(directory) -> "SampleStore":
    """Load a store written by :func:`save_sample_store`."""
    from .samples import SampleStore

    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_store":
        raise StorageError(f"{root} is not a saved sample store")
    store = SampleStore()
    for entry in manifest["flat"]:
        result = load_sample_result(root / "flat" / entry["dir"])
        store.add(entry["table"], entry["x_column"], entry["y_column"],
                  result)
    for entry in manifest["zoom"]:
        ladder = ZoomLadder.load(root / "zoom" / entry["file"])
        store.add_zoom_ladder(entry["table"], entry["x_column"],
                              entry["y_column"], ladder)
    return store


# -- whole databases ------------------------------------------------------

def save_database(db: "Database", directory) -> None:
    """Write tables + samples under one root (``repro.storage`` v1)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    tables = []
    for pos, name in enumerate(db.table_names):
        table_dir = f"{pos:04d}"
        content_hash = save_table(db.table(name), root / "tables" / table_dir)
        tables.append({"dir": table_dir, "name": name,
                       "content_hash": content_hash})
    save_sample_store(db.samples, root / "samples")
    write_json(root / "database.json", {
        "format": FORMAT_VERSION,
        "kind": "database",
        "tables": tables,
    })


def open_database(directory) -> "Database":
    """Load a database written by :func:`save_database`."""
    from .database import Database

    root = Path(directory)
    manifest = read_json(root / "database.json")
    if manifest.get("kind") != "database":
        raise StorageError(f"{root} is not a saved database")
    db = Database()
    for entry in manifest["tables"]:
        db.create_table(open_table(root / "tables" / entry["dir"]))
    db.samples = open_sample_store(root / "samples")
    return db
