"""On-disk persistence for the storage layer (workspace format v1).

Everything the in-memory column store owns — tables, flat sample
rungs, zoom ladders, whole databases — serialises to one directory
tree of columnar ``.npy`` files plus JSON manifests:

* a **table** is a directory: ``manifest.json`` (schema, row count,
  content hash, version history) next to columnar segment files — the
  initial save writes one ``col_NN.npy`` per column (segment 0), and
  every :func:`append_table` adds a ``seg_VVVV_col_NN.npy`` delta
  segment and bumps the manifest's monotonic ``version``;
* a **sample result** is a directory: ``manifest.json`` (method, size,
  JSON-safe metadata) next to ``points.npy`` / ``indices.npy`` and an
  optional ``weights.npy``;
* a **sample store** is a directory of numbered sample-result
  directories under ``flat/`` plus numbered ``.npz`` ladders (with
  JSON sidecars) under ``zoom/``;
* a **database** is ``tables/`` plus ``samples/`` under one root.

Array payloads are written with ``allow_pickle=False`` end to end, so
opening a workspace never executes pickled code.  Content hashes
(:func:`table_content_hash`) cover column names, logical types and raw
bytes — the :mod:`repro.service` layer keys its build cache on them,
which is what makes "same data + same params = reuse, changed data =
rebuild" work without timestamps or mtime heuristics.

Appends are **versioned**: every version has a cumulative row count
and a *rolling* content hash (:func:`rolling_content_hash` — the
previous version's hash chained with the delta segment's hash,
O(delta) to compute).  A table is readable at any version boundary
still on disk (:func:`open_table` with ``version=``), so artifacts
keyed on an old version's hash stay valid for that version after new
rows arrive.

Appends are also **journaled**: :func:`append_table` writes the delta
segment files and then appends one JSON line to ``journal.jsonl`` —
an O(1) write regardless of how many appends came before.  The
manifest itself is only rewritten by :func:`compact_table`, which
folds the journal (and the accumulated delta segments) back into it:
runs of segments between still-referenced versions become single
**checkpoint** segments, and history entries below the oldest
still-referenced hash are truncated.  Every hash that survives is
carried verbatim, so the rolling chain — and therefore every build
key derived from it — is bit-identical across compactions.  Readers
always see ``manifest ⊕ journal`` through
:func:`load_table_manifest`, so a table is consistent at every point
of the append/compact cycle.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..errors import StorageError
from ..sampling.base import SampleResult
from .column import Column, ColumnType
from .table import Table
from .zoom import ZoomLadder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .samples import SampleStore

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def write_json(path: Path, payload: dict) -> None:
    """Write a manifest atomically enough for a single-writer workspace."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read manifest {path}: {exc}") from exc


def json_safe(mapping: Mapping) -> dict:
    """The JSON-representable subset of a metadata mapping.

    Sample metadata can carry arrays or rich objects (traces); the
    manifest keeps only scalars and strings so a saved workspace stays
    plain JSON.
    """
    out = {}
    for key, value in mapping.items():
        if isinstance(value, (bool, str)) or value is None:
            out[str(key)] = value
        elif isinstance(value, (int, np.integer)):
            out[str(key)] = int(value)
        elif isinstance(value, (float, np.floating)):
            out[str(key)] = float(value)
    return out


# -- content hashing ------------------------------------------------------

def content_hash_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """A sha256 over column names, dtypes and raw bytes.

    The hash is the identity of a dataset for cache purposes: it
    changes iff the schema or the values change, and is independent of
    where the data came from (CSV path, generator, another workspace).
    """
    digest = hashlib.sha256()
    for name in arrays:  # caller-defined order is part of the identity
        arr = np.ascontiguousarray(np.asarray(arrays[name]))
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def table_content_hash(table: Table) -> str:
    """Content hash of a table (column order included)."""
    return content_hash_arrays(
        {n: table.column(n).values for n in table.column_names}
    )


def rolling_content_hash(previous: str, delta: str) -> str:
    """The content hash of a table version derived by appending.

    Chaining ``sha256(previous + ":" + delta_hash)`` makes a version's
    identity a function of the base data *and the exact append
    history*, computable in O(delta) — the full columns never need
    re-hashing.  The same base with the same appends in the same order
    always lands on the same hash, on disk or in memory.
    """
    return hashlib.sha256(f"{previous}:{delta}".encode()).hexdigest()


# -- tables ---------------------------------------------------------------

#: The per-append journal next to a table's manifest.
JOURNAL_NAME = "journal.jsonl"

#: Approximate ``.npy`` header cost per file — what folding a tiny
#: delta segment into a checkpoint reclaims besides filesystem slack.
_NPY_HEADER_BYTES = 128


def save_table(table: Table, directory) -> str:
    """Write one table as ``manifest.json`` + ``col_NN.npy`` files.

    Returns the table's content hash (also recorded in the manifest).
    Column files are numbered in schema order because column *names*
    are user data and may not be valid filenames.  The manifest starts
    the table's version history at version 0 (one segment holding every
    row); stale delta/checkpoint segments and the append journal from
    any table previously saved at the same path are removed so the
    directory never mixes histories.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    # Segments, checkpoints and column files from any previously saved
    # table go: a re-save with fewer columns must not leave orphans.
    for stale in (*root.glob("seg_*.npy"), *root.glob("col_*.npy"),
                  *root.glob("chk_*.npy")):
        stale.unlink()
    (root / JOURNAL_NAME).unlink(missing_ok=True)
    columns = []
    files = []
    for pos, name in enumerate(table.column_names):
        column = table.column(name)
        filename = f"col_{pos:02d}.npy"
        np.save(root / filename, column.values, allow_pickle=False)
        columns.append({"name": name, "type": column.ctype.name,
                        "file": filename})
        files.append(filename)
    digest = table_content_hash(table)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "table",
        "name": table.name,
        "rows": len(table),
        "columns": columns,
        "content_hash": digest,
        "version": 0,
        "versions": [{"version": 0, "rows": len(table),
                      "content_hash": digest}],
        "segments": [{"version": 0, "rows": len(table), "files": files}],
    })
    return digest


def _segments_of(manifest: dict) -> list[dict]:
    """The manifest's segment list (synthesised for pre-append saves)."""
    if "segments" in manifest:
        return manifest["segments"]
    return [{"version": 0, "rows": manifest["rows"],
             "files": [spec["file"] for spec in manifest["columns"]]}]


def _versions_of(manifest: dict) -> list[dict]:
    """The manifest's version history (synthesised, like segment 0, for
    tables saved before the live-table format — their base hash must
    stay in the history or every pre-append artifact would go dark)."""
    if "versions" in manifest:
        return manifest["versions"]
    return [{"version": 0, "rows": manifest["rows"],
             "content_hash": manifest["content_hash"]}]


def _delta_files(version: int, n_columns: int) -> list[str]:
    """Segment file names are derived, not stored, for journal appends."""
    return [f"seg_{version:04d}_col_{pos:02d}.npy"
            for pos in range(n_columns)]


def _scan_journal(root: Path) -> tuple[list[dict], int]:
    """``(entries, valid_bytes)`` of the append journal, oldest first.

    ``valid_bytes`` is the length of the journal's durable prefix: a
    torn trailing line (a crash mid-append) is treated as the end of
    the journal, and the byte offset where it starts lets the next
    append truncate it away before writing — otherwise the new line
    would concatenate onto the partial one and every later entry
    would be unreadable.
    """
    path = root / JOURNAL_NAME
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        # No journal — or a compaction in another process (a follower
        # reading its leader) folded and removed it between our
        # existence check and the read.  Either way: no entries.
        return [], 0
    entries = []
    valid_bytes = 0
    offset = 0
    for line in raw.splitlines(keepends=True):
        stop = offset + len(line)
        text = line.strip()
        if text:
            try:
                entry = json.loads(text)
            except json.JSONDecodeError:
                break
            if not line.endswith(b"\n"):
                break  # complete JSON but no newline: still a torn write
            entries.append(entry)
        valid_bytes = stop
        offset = stop
    return entries, valid_bytes


def _read_journal(root: Path) -> list[dict]:
    """The append journal's durable entries, oldest first."""
    return _scan_journal(root)[0]


def load_table_manifest(directory) -> dict:
    """The table's *effective* manifest: ``manifest.json`` with any
    journal appends folded in.

    This is the one read path every consumer (:func:`open_table`, the
    workspace's warm-path metadata lookups) goes through, so a table
    looks the same whether its appends have been compacted into the
    manifest or still live in the journal.
    """
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "table":
        return manifest
    entries = _read_journal(root)
    if not entries:
        return manifest
    manifest = dict(manifest)
    versions = list(_versions_of(manifest))
    segments = list(_segments_of(manifest))
    n_columns = len(manifest["columns"])
    for entry in entries:
        version = int(entry["version"])
        if version <= int(manifest.get("version", 0)):
            # A line from before the last compaction (the manifest
            # already folded it) — skip, never double-count.
            continue
        versions.append({"version": version, "rows": int(entry["rows"]),
                         "content_hash": entry["content_hash"]})
        segments.append({"version": version,
                         "rows": int(entry["delta_rows"]),
                         "files": _delta_files(version, n_columns)})
        manifest["version"] = version
        manifest["rows"] = int(entry["rows"])
        manifest["content_hash"] = entry["content_hash"]
    manifest["versions"] = versions
    manifest["segments"] = segments
    return manifest


def append_table(directory, arrays: Mapping[str, np.ndarray]) -> dict:
    """Append rows to a saved table as a new delta segment.

    ``arrays`` must cover exactly the table's columns (values are
    coerced to the declared types).  Writes one
    ``seg_VVVV_col_NN.npy`` per column, then appends **one line** to
    the journal — the manifest is not rewritten, so the write cost of
    an append is O(delta), independent of how many appends came
    before.  A reader holding the old journal state, or asking for an
    old version, still sees exactly the rows of that version.  Returns
    the updated *effective* manifest.
    """
    root = Path(directory)
    manifest = load_table_manifest(root)
    if manifest.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    specs = manifest["columns"]
    expected = [spec["name"] for spec in specs]
    if set(arrays) != set(expected):
        raise StorageError(
            f"append columns {sorted(arrays)} do not match table "
            f"columns {expected}"
        )
    coerced = {
        spec["name"]: ColumnType(spec["type"]).coerce(
            np.asarray(arrays[spec["name"]]))
        for spec in specs
    }
    lengths = {len(v) for v in coerced.values()}
    if len(lengths) != 1:
        raise StorageError(f"append column lengths differ: {sorted(lengths)}")
    n_rows = lengths.pop()
    if n_rows == 0:
        return manifest
    version = int(manifest.get("version", 0)) + 1
    files = _delta_files(version, len(specs))
    for pos, spec in enumerate(specs):
        np.save(root / files[pos], coerced[spec["name"]],
                allow_pickle=False)
    delta = content_hash_arrays({n: coerced[n] for n in expected})
    digest = rolling_content_hash(manifest["content_hash"], delta)
    total_rows = int(manifest["rows"]) + n_rows
    entry = {"version": version, "rows": total_rows,
             "delta_rows": n_rows, "content_hash": digest}
    # Repair first: a torn trailing line from a crashed append must be
    # truncated away, or this write would concatenate onto it and turn
    # both lines unreadable — silently un-journaling every append from
    # here on.  Then one O(1) appending write; the segment files above
    # land first so a journal line never references data that is not
    # on disk yet.
    journal_path = root / JOURNAL_NAME
    _, valid_bytes = _scan_journal(root)
    if journal_path.is_file() and journal_path.stat().st_size > valid_bytes:
        with open(journal_path, "r+b") as journal:
            journal.truncate(valid_bytes)
    with open(journal_path, "a") as journal:
        journal.write(json.dumps(entry, sort_keys=True) + "\n")
    # History entries are derived from the *pre-append* state (the
    # synthesised fallbacks must describe the old state, not the new).
    history = _versions_of(manifest)
    segments = _segments_of(manifest)
    manifest = dict(manifest)
    manifest["version"] = version
    manifest["rows"] = total_rows
    manifest["content_hash"] = digest
    manifest["versions"] = history + [
        {"version": version, "rows": total_rows, "content_hash": digest}
    ]
    manifest["segments"] = segments + [
        {"version": version, "rows": n_rows, "files": files}
    ]
    return manifest


def open_table(directory, version: int | None = None) -> Table:
    """Load a table written by :func:`save_table` / :func:`append_table`.

    ``version=None`` loads the newest version; an explicit ``version``
    reconstructs the table exactly as it was at that point in the
    append history (segments beyond it are simply not read).  After a
    :func:`compact_table`, only the versions compaction kept (the ones
    a cache artifact still referenced, plus the newest) remain
    readable.  Columns are built over the segment chunks directly and
    concatenated lazily, so the cost of a cold open is bounded by the
    number of *segments* — checkpoint plus live deltas — not by the
    number of appends the table ever absorbed.
    """
    root = Path(directory)
    manifest = load_table_manifest(root)
    if manifest.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    current = int(manifest.get("version", 0))
    if version is None:
        version = current
    available = {int(v["version"]) for v in _versions_of(manifest)}
    if version not in available:
        raise StorageError(
            f"{root} has no readable version {version} "
            f"(available: {sorted(available)})"
        )
    segments = [s for s in _segments_of(manifest)
                if int(s["version"]) <= version]
    columns = []
    for pos, spec in enumerate(manifest["columns"]):
        parts = [np.load(root / seg["files"][pos], allow_pickle=False)
                 for seg in segments]
        columns.append(Column.from_segments(
            spec["name"], ColumnType(spec["type"]), parts))
    return Table(manifest["name"], columns)


def compact_table(directory, keep_hashes=None) -> dict:
    """Fold journal + delta segments into checkpoints; truncate history.

    ``keep_hashes`` is the set of content hashes live cache artifacts
    still reference.  Every version whose hash is in the set (plus the
    newest version, always) keeps a segment boundary and stays
    re-openable; runs of segments *between* kept versions are folded
    into single checkpoint segments, and history entries at versions
    nobody references any more are truncated.  All surviving hashes
    are carried verbatim — the rolling chain is bit-identical across
    the compaction, so the next append computes exactly the hash it
    would have computed without it.

    The new manifest is written atomically before any old file is
    removed, and stale journal lines are ignored by readers (their
    version is already folded), so a crash at any point leaves the
    table readable.  Returns compaction stats (plus the surviving
    ``versions`` history, for callers that mirror it in memory).
    """
    root = Path(directory)
    state = load_table_manifest(root)
    if state.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    versions = [dict(v) for v in _versions_of(state)]
    segments = [dict(s) for s in _segments_of(state)]
    current = int(state.get("version", 0))
    keep_hashes = set(keep_hashes or ())
    keep_versions = sorted(
        {int(v["version"]) for v in versions
         if v["content_hash"] in keep_hashes} | {current}
    )
    n_columns = len(state["columns"])
    epoch = int(state.get("compactions", 0)) + 1

    journal_path = root / JOURNAL_NAME
    journal_bytes = (journal_path.stat().st_size
                     if journal_path.is_file() else 0)
    old_files = {f for seg in segments for f in seg["files"]}
    old_bytes = sum((root / f).stat().st_size for f in old_files
                    if (root / f).is_file())

    runs = []
    previous = -1
    for boundary in keep_versions:
        run = [s for s in segments
               if previous < int(s["version"]) <= boundary]
        previous = boundary
        if run:
            runs.append((boundary, run))
    new_versions = [v for v in versions
                    if int(v["version"]) in set(keep_versions)]
    if (journal_bytes == 0
            and len(new_versions) == len(versions)
            and all(len(run) == 1 for _, run in runs)):
        # Nothing to fold, nothing to truncate, no journal: leave the
        # manifest untouched (a futile rewrite per call would make a
        # pinned-at-threshold auto-compaction loop expensive).
        return {
            "compacted": False,
            "version": current,
            "content_hash": state["content_hash"],
            "versions": versions,
            "segments_before": len(segments),
            "segments_after": len(segments),
            "versions_dropped": 0,
            "reclaimed_bytes": 0,
            "on_disk_bytes": int(old_bytes),
        }

    new_segments = []
    written: list[str] = []
    for boundary, run in runs:
        if len(run) == 1:
            # Already a single segment ending exactly at a kept
            # version — reuse its files untouched, no IO.
            new_segments.append(run[0])
            continue
        files = []
        for pos in range(n_columns):
            filename = f"chk_{epoch:03d}_{boundary:04d}_col_{pos:02d}.npy"
            parts = [np.load(root / seg["files"][pos],
                             allow_pickle=False) for seg in run]
            np.save(root / filename, np.concatenate(parts),
                    allow_pickle=False)
            files.append(filename)
        written.extend(files)
        new_segments.append({
            "version": boundary,
            "rows": int(sum(int(s["rows"]) for s in run)),
            "files": files,
        })

    manifest = dict(state)
    manifest["versions"] = new_versions
    manifest["segments"] = new_segments
    manifest["compactions"] = epoch
    write_json(root / "manifest.json", manifest)

    # Only after the manifest durably references the new layout do the
    # superseded files go.
    journal_path.unlink(missing_ok=True)
    referenced = {f for seg in new_segments for f in seg["files"]}
    removed_bytes = 0
    for pattern in ("seg_*.npy", "col_*.npy", "chk_*.npy"):
        for path in root.glob(pattern):
            if path.name not in referenced:
                removed_bytes += path.stat().st_size
                path.unlink()
    written_bytes = sum((root / f).stat().st_size for f in written)
    return {
        "compacted": len(segments) != len(new_segments)
        or len(versions) != len(new_versions) or journal_bytes > 0,
        "version": current,
        "content_hash": state["content_hash"],
        "versions": new_versions,
        "segments_before": len(segments),
        "segments_after": len(new_segments),
        "versions_dropped": len(versions) - len(new_versions),
        "reclaimed_bytes": int(journal_bytes + removed_bytes
                               - written_bytes),
        "on_disk_bytes": int(old_bytes - removed_bytes + written_bytes),
    }


def _size_or_zero(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def table_storage_stats(directory, state: dict | None = None) -> dict:
    """Segment count / bytes / reclaimable estimate for one table.

    ``reclaimable_bytes`` is what folding every segment into one
    checkpoint per column would free: the journal plus one ``.npy``
    header per merged-away file.  Filesystem block slack (the dominant
    real cost of thousands of tiny delta files) comes on top, so this
    is a conservative floor — and the signal the
    :class:`~repro.service.CompactionPolicy` byte threshold gates on.

    ``state`` lets a caller that already holds the table's effective
    manifest (:func:`load_table_manifest`) skip the second read.
    """
    root = Path(directory)
    if state is None:
        state = load_table_manifest(root)
    segments = _segments_of(state)
    n_columns = len(state["columns"])
    files = [f for seg in segments for f in seg["files"]]
    # Sizes are a gauge, not an invariant: a compaction racing this
    # sweep from another process (a follower polling its leader) may
    # delete a listed segment between the manifest read and the stat
    # — count what is still there rather than erroring.
    data_bytes = sum(_size_or_zero(root / f) for f in files)
    journal_bytes = _size_or_zero(root / JOURNAL_NAME)
    manifest_bytes = _size_or_zero(root / "manifest.json")
    reclaimable = journal_bytes
    if len(segments) > 1:
        reclaimable += (len(files) - n_columns) * _NPY_HEADER_BYTES
    return {
        "segments": len(segments),
        "on_disk_bytes": int(data_bytes + journal_bytes + manifest_bytes),
        "reclaimable_bytes": int(reclaimable),
    }


# -- sample results -------------------------------------------------------

def save_sample_result(result: SampleResult, directory,
                       extra: dict | None = None) -> None:
    """Write one :class:`SampleResult` as arrays + manifest.

    ``extra`` lets callers (the sample store, the service build cache)
    record context the result itself does not carry — table name,
    column pair, build parameters.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    np.save(root / "points.npy", result.points, allow_pickle=False)
    np.save(root / "indices.npy", result.indices, allow_pickle=False)
    if result.weights is not None:
        np.save(root / "weights.npy", result.weights, allow_pickle=False)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_result",
        "method": result.method,
        "size": len(result),
        "has_weights": result.weights is not None,
        "metadata": json_safe(result.metadata),
        **(extra or {}),
    })


def load_sample_result(directory) -> SampleResult:
    """Load a sample result written by :func:`save_sample_result`."""
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_result":
        raise StorageError(f"{root} is not a saved sample result")
    weights = None
    if manifest.get("has_weights"):
        weights = np.load(root / "weights.npy", allow_pickle=False)
    return SampleResult(
        points=np.load(root / "points.npy", allow_pickle=False),
        indices=np.load(root / "indices.npy", allow_pickle=False),
        weights=weights,
        method=manifest.get("method", ""),
        metadata=dict(manifest.get("metadata", {})),
    )


# -- sample stores --------------------------------------------------------

def save_sample_store(store: "SampleStore", directory) -> None:
    """Write a full store: numbered flat rungs plus numbered ladders."""
    root = Path(directory)
    (root / "flat").mkdir(parents=True, exist_ok=True)
    (root / "zoom").mkdir(parents=True, exist_ok=True)
    entries = []
    counter = 0
    for key, ladder in store._ladders.items():
        for size in ladder.sizes:
            name = f"{counter:04d}"
            save_sample_result(
                ladder.samples[size], root / "flat" / name,
                extra={"table": key.table, "x_column": key.x_column,
                       "y_column": key.y_column},
            )
            entries.append({"dir": name, "table": key.table,
                            "x_column": key.x_column,
                            "y_column": key.y_column,
                            "method": key.method, "size": size})
            counter += 1
    zooms = []
    for pos, (key, zoom) in enumerate(store._zoom_ladders.items()):
        name = f"{pos:04d}.npz"
        zoom.save(root / "zoom" / name)
        zooms.append({"file": name, "table": key.table,
                      "x_column": key.x_column, "y_column": key.y_column,
                      "method": key.method})
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_store",
        "flat": entries,
        "zoom": zooms,
    })


def open_sample_store(directory) -> "SampleStore":
    """Load a store written by :func:`save_sample_store`."""
    from .samples import SampleStore

    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_store":
        raise StorageError(f"{root} is not a saved sample store")
    store = SampleStore()
    for entry in manifest["flat"]:
        result = load_sample_result(root / "flat" / entry["dir"])
        store.add(entry["table"], entry["x_column"], entry["y_column"],
                  result)
    for entry in manifest["zoom"]:
        ladder = ZoomLadder.load(root / "zoom" / entry["file"])
        store.add_zoom_ladder(entry["table"], entry["x_column"],
                              entry["y_column"], ladder)
    return store


# -- whole databases ------------------------------------------------------

def save_database(db: "Database", directory) -> None:
    """Write tables + samples under one root (``repro.storage`` v1)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    tables = []
    for pos, name in enumerate(db.table_names):
        table_dir = f"{pos:04d}"
        content_hash = save_table(db.table(name), root / "tables" / table_dir)
        tables.append({"dir": table_dir, "name": name,
                       "content_hash": content_hash})
    save_sample_store(db.samples, root / "samples")
    write_json(root / "database.json", {
        "format": FORMAT_VERSION,
        "kind": "database",
        "tables": tables,
    })


def open_database(directory) -> "Database":
    """Load a database written by :func:`save_database`."""
    from .database import Database

    root = Path(directory)
    manifest = read_json(root / "database.json")
    if manifest.get("kind") != "database":
        raise StorageError(f"{root} is not a saved database")
    db = Database()
    for entry in manifest["tables"]:
        db.create_table(open_table(root / "tables" / entry["dir"]))
    db.samples = open_sample_store(root / "samples")
    return db
