"""On-disk persistence for the storage layer (workspace format v1).

Everything the in-memory column store owns — tables, flat sample
rungs, zoom ladders, whole databases — serialises to one directory
tree of columnar ``.npy`` files plus JSON manifests:

* a **table** is a directory: ``manifest.json`` (schema, row count,
  content hash, version history) next to columnar segment files — the
  initial save writes one ``col_NN.npy`` per column (segment 0), and
  every :func:`append_table` adds a ``seg_VVVV_col_NN.npy`` delta
  segment and bumps the manifest's monotonic ``version``;
* a **sample result** is a directory: ``manifest.json`` (method, size,
  JSON-safe metadata) next to ``points.npy`` / ``indices.npy`` and an
  optional ``weights.npy``;
* a **sample store** is a directory of numbered sample-result
  directories under ``flat/`` plus numbered ``.npz`` ladders (with
  JSON sidecars) under ``zoom/``;
* a **database** is ``tables/`` plus ``samples/`` under one root.

Array payloads are written with ``allow_pickle=False`` end to end, so
opening a workspace never executes pickled code.  Content hashes
(:func:`table_content_hash`) cover column names, logical types and raw
bytes — the :mod:`repro.service` layer keys its build cache on them,
which is what makes "same data + same params = reuse, changed data =
rebuild" work without timestamps or mtime heuristics.

Appends are **versioned**: the manifest's ``versions`` list records,
for every version, the cumulative row count and a *rolling* content
hash (:func:`rolling_content_hash` — the previous version's hash
chained with the delta segment's hash, O(delta) to compute).  A table
is readable at any version (:func:`open_table` with ``version=``), so
artifacts keyed on an old version's hash stay valid for that version
after new rows arrive.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..errors import StorageError
from ..sampling.base import SampleResult
from .column import Column, ColumnType
from .table import Table
from .zoom import ZoomLadder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .samples import SampleStore

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def write_json(path: Path, payload: dict) -> None:
    """Write a manifest atomically enough for a single-writer workspace."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read manifest {path}: {exc}") from exc


def json_safe(mapping: Mapping) -> dict:
    """The JSON-representable subset of a metadata mapping.

    Sample metadata can carry arrays or rich objects (traces); the
    manifest keeps only scalars and strings so a saved workspace stays
    plain JSON.
    """
    out = {}
    for key, value in mapping.items():
        if isinstance(value, (bool, str)) or value is None:
            out[str(key)] = value
        elif isinstance(value, (int, np.integer)):
            out[str(key)] = int(value)
        elif isinstance(value, (float, np.floating)):
            out[str(key)] = float(value)
    return out


# -- content hashing ------------------------------------------------------

def content_hash_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """A sha256 over column names, dtypes and raw bytes.

    The hash is the identity of a dataset for cache purposes: it
    changes iff the schema or the values change, and is independent of
    where the data came from (CSV path, generator, another workspace).
    """
    digest = hashlib.sha256()
    for name in arrays:  # caller-defined order is part of the identity
        arr = np.ascontiguousarray(np.asarray(arrays[name]))
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def table_content_hash(table: Table) -> str:
    """Content hash of a table (column order included)."""
    return content_hash_arrays(
        {n: table.column(n).values for n in table.column_names}
    )


def rolling_content_hash(previous: str, delta: str) -> str:
    """The content hash of a table version derived by appending.

    Chaining ``sha256(previous + ":" + delta_hash)`` makes a version's
    identity a function of the base data *and the exact append
    history*, computable in O(delta) — the full columns never need
    re-hashing.  The same base with the same appends in the same order
    always lands on the same hash, on disk or in memory.
    """
    return hashlib.sha256(f"{previous}:{delta}".encode()).hexdigest()


# -- tables ---------------------------------------------------------------

def save_table(table: Table, directory) -> str:
    """Write one table as ``manifest.json`` + ``col_NN.npy`` files.

    Returns the table's content hash (also recorded in the manifest).
    Column files are numbered in schema order because column *names*
    are user data and may not be valid filenames.  The manifest starts
    the table's version history at version 0 (one segment holding every
    row); stale delta segments from any table previously saved at the
    same path are removed so the directory never mixes histories.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    # Both delta segments and column files from any previously saved
    # table go: a re-save with fewer columns must not leave orphans.
    for stale in (*root.glob("seg_*.npy"), *root.glob("col_*.npy")):
        stale.unlink()
    columns = []
    files = []
    for pos, name in enumerate(table.column_names):
        column = table.column(name)
        filename = f"col_{pos:02d}.npy"
        np.save(root / filename, column.values, allow_pickle=False)
        columns.append({"name": name, "type": column.ctype.name,
                        "file": filename})
        files.append(filename)
    digest = table_content_hash(table)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "table",
        "name": table.name,
        "rows": len(table),
        "columns": columns,
        "content_hash": digest,
        "version": 0,
        "versions": [{"version": 0, "rows": len(table),
                      "content_hash": digest}],
        "segments": [{"version": 0, "rows": len(table), "files": files}],
    })
    return digest


def _segments_of(manifest: dict) -> list[dict]:
    """The manifest's segment list (synthesised for pre-append saves)."""
    if "segments" in manifest:
        return manifest["segments"]
    return [{"version": 0, "rows": manifest["rows"],
             "files": [spec["file"] for spec in manifest["columns"]]}]


def _versions_of(manifest: dict) -> list[dict]:
    """The manifest's version history (synthesised, like segment 0, for
    tables saved before the live-table format — their base hash must
    stay in the history or every pre-append artifact would go dark)."""
    if "versions" in manifest:
        return manifest["versions"]
    return [{"version": 0, "rows": manifest["rows"],
             "content_hash": manifest["content_hash"]}]


def append_table(directory, arrays: Mapping[str, np.ndarray]) -> dict:
    """Append rows to a saved table as a new delta segment.

    ``arrays`` must cover exactly the table's columns (values are
    coerced to the declared types).  Writes one
    ``seg_VVVV_col_NN.npy`` per column, then atomically replaces the
    manifest with version ``V`` appended to the history — a reader
    holding the old manifest, or asking for an old version, still sees
    exactly the rows of that version.  Returns the updated manifest.
    """
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    specs = manifest["columns"]
    expected = [spec["name"] for spec in specs]
    if set(arrays) != set(expected):
        raise StorageError(
            f"append columns {sorted(arrays)} do not match table "
            f"columns {expected}"
        )
    coerced = {
        spec["name"]: ColumnType(spec["type"]).coerce(
            np.asarray(arrays[spec["name"]]))
        for spec in specs
    }
    lengths = {len(v) for v in coerced.values()}
    if len(lengths) != 1:
        raise StorageError(f"append column lengths differ: {sorted(lengths)}")
    n_rows = lengths.pop()
    if n_rows == 0:
        return manifest
    version = int(manifest.get("version", 0)) + 1
    files = []
    for pos, spec in enumerate(specs):
        filename = f"seg_{version:04d}_col_{pos:02d}.npy"
        np.save(root / filename, coerced[spec["name"]], allow_pickle=False)
        files.append(filename)
    delta = content_hash_arrays({n: coerced[n] for n in expected})
    digest = rolling_content_hash(manifest["content_hash"], delta)
    # History entries are derived from the *pre-append* manifest (the
    # synthesised fallbacks must describe the old state, not the new).
    history = _versions_of(manifest)
    segments = _segments_of(manifest)
    manifest = dict(manifest)
    manifest["version"] = version
    manifest["rows"] = int(manifest["rows"]) + n_rows
    manifest["content_hash"] = digest
    manifest["versions"] = history + [
        {"version": version, "rows": manifest["rows"],
         "content_hash": digest}
    ]
    manifest["segments"] = segments + [
        {"version": version, "rows": n_rows, "files": files}
    ]
    write_json(root / "manifest.json", manifest)
    return manifest


def open_table(directory, version: int | None = None) -> Table:
    """Load a table written by :func:`save_table` / :func:`append_table`.

    ``version=None`` loads the newest version; an explicit ``version``
    reconstructs the table exactly as it was at that point in the
    append history (segments beyond it are simply not read).
    """
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "table":
        raise StorageError(f"{root} is not a saved table")
    current = int(manifest.get("version", 0))
    if version is None:
        version = current
    if not (0 <= version <= current):
        raise StorageError(
            f"{root} has no version {version} (history is 0..{current})"
        )
    segments = [s for s in _segments_of(manifest)
                if int(s["version"]) <= version]
    columns = []
    for pos, spec in enumerate(manifest["columns"]):
        parts = [np.load(root / seg["files"][pos], allow_pickle=False)
                 for seg in segments]
        values = parts[0] if len(parts) == 1 else np.concatenate(parts)
        columns.append(Column(spec["name"], ColumnType(spec["type"]),
                              values))
    return Table(manifest["name"], columns)


# -- sample results -------------------------------------------------------

def save_sample_result(result: SampleResult, directory,
                       extra: dict | None = None) -> None:
    """Write one :class:`SampleResult` as arrays + manifest.

    ``extra`` lets callers (the sample store, the service build cache)
    record context the result itself does not carry — table name,
    column pair, build parameters.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    np.save(root / "points.npy", result.points, allow_pickle=False)
    np.save(root / "indices.npy", result.indices, allow_pickle=False)
    if result.weights is not None:
        np.save(root / "weights.npy", result.weights, allow_pickle=False)
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_result",
        "method": result.method,
        "size": len(result),
        "has_weights": result.weights is not None,
        "metadata": json_safe(result.metadata),
        **(extra or {}),
    })


def load_sample_result(directory) -> SampleResult:
    """Load a sample result written by :func:`save_sample_result`."""
    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_result":
        raise StorageError(f"{root} is not a saved sample result")
    weights = None
    if manifest.get("has_weights"):
        weights = np.load(root / "weights.npy", allow_pickle=False)
    return SampleResult(
        points=np.load(root / "points.npy", allow_pickle=False),
        indices=np.load(root / "indices.npy", allow_pickle=False),
        weights=weights,
        method=manifest.get("method", ""),
        metadata=dict(manifest.get("metadata", {})),
    )


# -- sample stores --------------------------------------------------------

def save_sample_store(store: "SampleStore", directory) -> None:
    """Write a full store: numbered flat rungs plus numbered ladders."""
    root = Path(directory)
    (root / "flat").mkdir(parents=True, exist_ok=True)
    (root / "zoom").mkdir(parents=True, exist_ok=True)
    entries = []
    counter = 0
    for key, ladder in store._ladders.items():
        for size in ladder.sizes:
            name = f"{counter:04d}"
            save_sample_result(
                ladder.samples[size], root / "flat" / name,
                extra={"table": key.table, "x_column": key.x_column,
                       "y_column": key.y_column},
            )
            entries.append({"dir": name, "table": key.table,
                            "x_column": key.x_column,
                            "y_column": key.y_column,
                            "method": key.method, "size": size})
            counter += 1
    zooms = []
    for pos, (key, zoom) in enumerate(store._zoom_ladders.items()):
        name = f"{pos:04d}.npz"
        zoom.save(root / "zoom" / name)
        zooms.append({"file": name, "table": key.table,
                      "x_column": key.x_column, "y_column": key.y_column,
                      "method": key.method})
    write_json(root / "manifest.json", {
        "format": FORMAT_VERSION,
        "kind": "sample_store",
        "flat": entries,
        "zoom": zooms,
    })


def open_sample_store(directory) -> "SampleStore":
    """Load a store written by :func:`save_sample_store`."""
    from .samples import SampleStore

    root = Path(directory)
    manifest = read_json(root / "manifest.json")
    if manifest.get("kind") != "sample_store":
        raise StorageError(f"{root} is not a saved sample store")
    store = SampleStore()
    for entry in manifest["flat"]:
        result = load_sample_result(root / "flat" / entry["dir"])
        store.add(entry["table"], entry["x_column"], entry["y_column"],
                  result)
    for entry in manifest["zoom"]:
        ladder = ZoomLadder.load(root / "zoom" / entry["file"])
        store.add_zoom_ladder(entry["table"], entry["x_column"],
                              entry["y_column"], ladder)
    return store


# -- whole databases ------------------------------------------------------

def save_database(db: "Database", directory) -> None:
    """Write tables + samples under one root (``repro.storage`` v1)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    tables = []
    for pos, name in enumerate(db.table_names):
        table_dir = f"{pos:04d}"
        content_hash = save_table(db.table(name), root / "tables" / table_dir)
        tables.append({"dir": table_dir, "name": name,
                       "content_hash": content_hash})
    save_sample_store(db.samples, root / "samples")
    write_json(root / "database.json", {
        "format": FORMAT_VERSION,
        "kind": "database",
        "tables": tables,
    })


def open_database(directory) -> "Database":
    """Load a database written by :func:`save_database`."""
    from .database import Database

    root = Path(directory)
    manifest = read_json(root / "database.json")
    if manifest.get("kind") != "database":
        raise StorageError(f"{root} is not a saved database")
    db = Database()
    for entry in manifest["tables"]:
        db.create_table(open_table(root / "tables" / entry["dir"]))
    db.samples = open_sample_store(root / "samples")
    return db
