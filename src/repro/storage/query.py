"""Visualization queries and their results.

A :class:`VizQuery` is the tool-generated request of Fig 3: which table
and column pair to plot, an optional zoom window, and a latency or
point budget that the database converts into a stored-sample choice
(§II-B, §II-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..viz.scatter import Viewport


@dataclass
class VizQuery:
    """A scatter/map-plot request against the database.

    Attributes
    ----------
    table / x_column / y_column:
        What to plot.
    method:
        Which sample family to serve from (``"vas"``, ``"uniform"``,
        ``"stratified"``, ``"vas+density"``, ...).
    viewport:
        Optional zoom window applied to the returned rows.
    time_budget_seconds / seconds_per_point / fixed_overhead_seconds:
        The §II-D latency contract: budget and calibrated rendering
        rate.  Ignored when ``max_points`` is given.
    max_points:
        Explicit point budget (overrides the time budget).
    """

    table: str
    x_column: str
    y_column: str
    method: str = "vas"
    viewport: Viewport | None = None
    time_budget_seconds: float | None = None
    seconds_per_point: float = 1e-6
    fixed_overhead_seconds: float = 0.0
    max_points: int | None = None

    def __post_init__(self) -> None:
        if self.time_budget_seconds is not None and self.time_budget_seconds < 0:
            raise ConfigurationError(
                f"time budget must be >= 0, got {self.time_budget_seconds}"
            )
        if self.max_points is not None and self.max_points < 0:
            raise ConfigurationError(
                f"max_points must be >= 0, got {self.max_points}"
            )
        if self.seconds_per_point <= 0:
            raise ConfigurationError(
                f"seconds_per_point must be positive, got {self.seconds_per_point}"
            )


@dataclass
class VizResult:
    """Rows returned to the visualization tool.

    ``sample_size`` is the size of the stored sample that served the
    query; ``returned_rows`` is after the viewport filter.
    """

    points: np.ndarray
    weights: np.ndarray | None
    method: str
    sample_size: int
    returned_rows: int
