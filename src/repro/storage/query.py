"""Visualization queries and their results.

A :class:`VizQuery` is the tool-generated request of Fig 3: which table
and column pair to plot, an optional zoom window, and a latency or
point budget that the database converts into a stored-sample choice
(§II-B, §II-D).

A :class:`ZoomQuery` is the interactive-workload variant: a viewport
(bbox) plus an optional explicit zoom level, answered from a
precomputed multi-resolution ladder (:mod:`repro.storage.zoom`) via
:func:`answer_zoom_query` — the spatial index of the chosen rung does
the work; Interchange never runs at query time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..viz.scatter import Viewport
from .predicates import Predicate, compile_points_mask


@dataclass
class VizQuery:
    """A scatter/map-plot request against the database.

    Attributes
    ----------
    table / x_column / y_column:
        What to plot.
    method:
        Which sample family to serve from (``"vas"``, ``"uniform"``,
        ``"stratified"``, ``"vas+density"``, ...).
    viewport:
        Optional zoom window applied to the returned rows.
    time_budget_seconds / seconds_per_point / fixed_overhead_seconds:
        The §II-D latency contract: budget and calibrated rendering
        rate.  Ignored when ``max_points`` is given.
    max_points:
        Explicit point budget (overrides the time budget).
    """

    table: str
    x_column: str
    y_column: str
    method: str = "vas"
    viewport: Viewport | None = None
    time_budget_seconds: float | None = None
    seconds_per_point: float = 1e-6
    fixed_overhead_seconds: float = 0.0
    max_points: int | None = None

    def __post_init__(self) -> None:
        if self.time_budget_seconds is not None and self.time_budget_seconds < 0:
            raise ConfigurationError(
                f"time budget must be >= 0, got {self.time_budget_seconds}"
            )
        if self.max_points is not None and self.max_points < 0:
            raise ConfigurationError(
                f"max_points must be >= 0, got {self.max_points}"
            )
        if self.seconds_per_point <= 0:
            raise ConfigurationError(
                f"seconds_per_point must be positive, got {self.seconds_per_point}"
            )


@dataclass
class VizResult:
    """Rows returned to the visualization tool.

    ``sample_size`` is the size of the stored sample that served the
    query; ``returned_rows`` is after the viewport filter.  For zoom
    queries ``zoom_level`` records the ladder rung that answered.
    """

    points: np.ndarray
    weights: np.ndarray | None
    method: str
    sample_size: int
    returned_rows: int
    zoom_level: int | None = None


@dataclass
class ZoomQuery:
    """A viewport (bbox + zoom) request against a prebuilt ladder.

    Attributes
    ----------
    table / x_column / y_column:
        Which ladder family to serve from.
    viewport:
        The data-space window to populate.
    zoom:
        Explicit ladder rung; ``None`` lets the ladder match the
        viewport extent.
    method:
        Ladder sample family (``"vas"`` by default).
    max_points:
        Optional response budget — the ladder demotes to coarser rungs
        until the answer fits.
    predicate:
        Optional row filter over the plotted columns, pushed into the
        ladder's tile walk (the rungs store only the ``(x, y)`` pair,
        so a predicate naming any other column is a
        :class:`~repro.errors.SchemaError`).
    """

    table: str
    x_column: str
    y_column: str
    viewport: Viewport
    zoom: int | None = None
    method: str = "vas"
    max_points: int | None = None
    predicate: Predicate | None = None

    def __post_init__(self) -> None:
        if self.zoom is not None and self.zoom < 0:
            raise ConfigurationError(f"zoom must be >= 0, got {self.zoom}")
        if self.max_points is not None and self.max_points < 0:
            raise ConfigurationError(
                f"max_points must be >= 0, got {self.max_points}"
            )


def answer_zoom_query(ladder, query: ZoomQuery) -> VizResult:
    """Serve a :class:`ZoomQuery` from a prebuilt zoom ladder.

    ``ladder`` is a :class:`repro.storage.zoom.ZoomLadder` (duck-typed
    to keep this module free of a circular import).  The chosen rung's
    spatial index answers the bbox probe; no sampling work happens
    here.  A ``query.predicate`` is compiled against the plotted
    column pair and pushed into the tile walk — bit-identical to
    post-filtering the unfiltered answer at the same rung, but the
    demotion loop sees filtered counts.
    """
    point_mask = None
    if query.predicate is not None:
        point_mask = compile_points_mask(
            query.predicate, {query.x_column: 0, query.y_column: 1}
        )
    points, _indices, level = ladder.query(
        query.viewport, zoom=query.zoom, max_points=query.max_points,
        point_mask=point_mask,
    )
    return VizResult(
        points=points,
        weights=None,
        method=ladder.method,
        sample_size=len(ladder.levels[level].points),
        returned_rows=len(points),
        zoom_level=level,
    )
