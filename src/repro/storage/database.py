"""The database: named tables plus the sample store.

Ties the storage substrate together into the Fig 3 architecture: a
:class:`Database` owns base tables, builds samples offline with any
:class:`~repro.sampling.Sampler`, and answers visualization queries
from the stored samples within a latency budget.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SchemaError, TableNotFoundError
from ..sampling.base import Sampler, SampleResult
from ..core.density import embed_density
from .query import VizQuery, VizResult, ZoomQuery, answer_zoom_query
from .samples import SampleStore
from .table import Table
from .zoom import ZoomLadder, build_zoom_ladder


class Database:
    """An in-memory database of tables and pre-built samples."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.samples = SampleStore()

    # -- table management -------------------------------------------------
    def create_table(self, table: Table) -> None:
        """Register a table; names are unique."""
        if table.name in self._tables:
            raise SchemaError(f"table already exists: {table.name!r}")
        self._tables[table.name] = table

    def create_table_from_arrays(self, name: str, arrays) -> Table:
        """Convenience: build and register a table from arrays."""
        table = Table.from_arrays(name, arrays)
        self.create_table(table)
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- offline sample builds ------------------------------------------------
    def build_sample(self, table_name: str, x_column: str, y_column: str,
                     sampler: Sampler, size: int,
                     with_density: bool = False,
                     chunk_size: int = 65536) -> SampleResult:
        """Run one offline sampling pass and register the result.

        ``with_density`` adds the §V second pass (a second scan).
        """
        table = self.table(table_name)
        result = sampler.sample(table.xy(x_column, y_column), size)
        if with_density:
            result = embed_density(
                result, table.scan(x_column, y_column, chunk_size=chunk_size)
            )
        self.samples.add(table_name, x_column, y_column, result)
        return result

    def build_sample_ladder(self, table_name: str, x_column: str,
                            y_column: str, sampler: Sampler,
                            sizes: Sequence[int],
                            with_density: bool = False) -> list[SampleResult]:
        """Build the multi-size ladder the §II-D selection rule needs."""
        return [
            self.build_sample(table_name, x_column, y_column, sampler,
                              size, with_density=with_density)
            for size in sizes
        ]

    def build_zoom_ladder(self, table_name: str, x_column: str,
                          y_column: str, levels: int = 4,
                          k_per_tile: int = 256,
                          rng: int | None = 0,
                          sampler_factory=None) -> ZoomLadder:
        """Precompute and register a multi-resolution zoom ladder.

        The offline half of the interactive workload: one VAS run per
        occupied tile per level (see :mod:`repro.storage.zoom`),
        stored under the table/column key for
        :meth:`execute_zoom` to serve.
        """
        table = self.table(table_name)
        ladder = build_zoom_ladder(
            table.xy(x_column, y_column), levels=levels,
            k_per_tile=k_per_tile, rng=rng,
            sampler_factory=sampler_factory,
        )
        self.samples.add_zoom_ladder(table_name, x_column, y_column, ladder)
        return ladder

    # -- query answering ----------------------------------------------------------
    def execute(self, query: VizQuery) -> VizResult:
        """Answer a visualization query from the stored samples.

        Resolution order: the query's explicit ``max_points`` wins;
        otherwise a ``time_budget_seconds`` plus rate converts to a
        point budget; otherwise the largest stored sample is returned.
        The viewport filter (zoom) applies after sample selection —
        precisely the interaction pattern of Fig 1, where one stored
        sample must serve every zoom level.
        """
        self.table(query.table)  # raises early on unknown table
        if query.max_points is not None:
            sample = self.samples.for_point_budget(
                query.table, query.x_column, query.y_column,
                query.method, query.max_points,
            )
        elif query.time_budget_seconds is not None:
            sample = self.samples.for_time_budget(
                query.table, query.x_column, query.y_column,
                query.method, query.time_budget_seconds,
                query.seconds_per_point,
                query.fixed_overhead_seconds,
            )
        else:
            big = 2**62
            sample = self.samples.for_point_budget(
                query.table, query.x_column, query.y_column,
                query.method, big,
            )
        points = sample.points
        weights = sample.weights
        if query.viewport is not None:
            mask = query.viewport.contains(points)
            points = points[mask]
            weights = weights[mask] if weights is not None else None
        return VizResult(
            points=points,
            weights=weights,
            method=sample.method,
            sample_size=len(sample),
            returned_rows=len(points),
        )

    # -- persistence -------------------------------------------------------
    def save(self, directory) -> None:
        """Write tables + samples as one on-disk directory tree."""
        from .persist import save_database

        save_database(self, directory)

    @classmethod
    def open(cls, directory) -> "Database":
        """Load a database written by :meth:`save`."""
        from .persist import open_database

        return open_database(directory)

    def execute_zoom(self, query: ZoomQuery) -> VizResult:
        """Answer a viewport (bbox + zoom) request from a stored ladder.

        Pure lookup: the rung's spatial index resolves the bbox, so
        latency is independent of the base table size — the property
        the interactive workload needs.
        """
        self.table(query.table)  # raises early on unknown table
        ladder = self.samples.zoom_ladder(
            query.table, query.x_column, query.y_column, query.method
        )
        return answer_zoom_query(ladder, query)
