"""Geolife-like GPS dataset generator.

The paper's main dataset is Geolife [26]: 24.4M (latitude, longitude,
altitude) tuples from GPS loggers "recorded mainly around Beijing".
The raw corpus is not redistributable here, so this module generates a
synthetic stand-in with the properties VAS is sensitive to:

* a **dense urban core** (most mass concentrated in a small area —
  uniform sampling over-samples it, which is the failure mode VAS
  fixes);
* **sparse corridors** (inter-city trips: thin, long trajectories that
  uniform sampling misses at small K — the structure visible only in
  the VAS zoom of Fig 1);
* **trajectory autocorrelation** (points come from random-walk traces,
  not i.i.d. draws, so local density varies over orders of magnitude);
* an **altitude field** correlated with position (the regression task
  of the user study asks for the altitude at a marked location).

Geometry uses the real Beijing bounding box in degrees so distances,
bandwidths and the paper's 0.1-degree domain radius transfer directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator

#: Approximate lon/lat box around greater Beijing used by the generator.
BEIJING_LON = (115.8, 117.2)
BEIJING_LAT = (39.5, 40.6)

#: Random-walk hubs: (lon, lat, weight, step_scale).  The first hub is
#: the dense urban core; the others are satellite towns reached through
#: sparse corridors.
_HUBS = (
    (116.40, 39.90, 0.62, 0.010),   # central Beijing
    (116.65, 40.13, 0.12, 0.015),   # Shunyi
    (116.10, 39.73, 0.08, 0.018),   # Fangshan
    (117.00, 40.45, 0.06, 0.025),   # Miyun
    (115.97, 40.45, 0.05, 0.025),   # Yanqing (mountains)
    (116.63, 39.55, 0.07, 0.020),   # Daxing/airport corridor
)


@dataclass
class GeolifeData:
    """A generated Geolife-like dataset.

    Attributes
    ----------
    xy:
        ``(N, 2)`` array of (longitude, latitude) pairs.
    altitude:
        ``(N,)`` altitude in metres, a smooth function of position plus
        sensor noise — suitable ground truth for the regression task.
    """

    xy: np.ndarray
    altitude: np.ndarray

    def __len__(self) -> int:
        return len(self.xy)

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """Column dict matching the paper's (lat, lon, altitude) schema."""
        return {
            "longitude": self.xy[:, 0],
            "latitude": self.xy[:, 1],
            "altitude": self.altitude,
        }


def altitude_at(xy: np.ndarray) -> np.ndarray:
    """Deterministic ground-truth altitude surface over the Beijing box.

    A plains-to-mountains gradient towards the north-west plus two
    smooth ridges.  Deterministic so that the regression task can score
    answers without storing the surface.
    """
    xy = np.asarray(xy, dtype=np.float64)
    lon = xy[..., 0]
    lat = xy[..., 1]
    # Normalise into [0, 1] over the Beijing box.
    u = (lon - BEIJING_LON[0]) / (BEIJING_LON[1] - BEIJING_LON[0])
    v = (lat - BEIJING_LAT[0]) / (BEIJING_LAT[1] - BEIJING_LAT[0])
    base = 40.0 + 60.0 * v + 40.0 * (1.0 - u)           # NW-rising plain
    ridge1 = 450.0 * np.exp(-(((u - 0.15) / 0.18) ** 2 +
                              ((v - 0.85) / 0.22) ** 2))  # Yanqing range
    ridge2 = 260.0 * np.exp(-(((u - 0.9) / 0.2) ** 2 +
                              ((v - 0.9) / 0.18) ** 2))   # Miyun hills
    bowl = -25.0 * np.exp(-(((u - 0.45) / 0.3) ** 2 +
                            ((v - 0.35) / 0.3) ** 2))     # urban basin
    return base + ridge1 + ridge2 + bowl


class GeolifeGenerator:
    """Seeded generator of Geolife-like trajectory data.

    Parameters
    ----------
    seed:
        Seed/generator; identical seeds give identical datasets.
    trajectory_length:
        Mean number of points per simulated trip.
    corridor_fraction:
        Fraction of trips that travel between two hubs (producing the
        sparse linear corridors); the rest wander around one hub.
    noise_std_m:
        Altitude sensor noise in metres.
    """

    def __init__(self, seed: int | np.random.Generator | None = 0,
                 trajectory_length: int = 200,
                 corridor_fraction: float = 0.18,
                 noise_std_m: float = 8.0) -> None:
        if trajectory_length < 1:
            raise ConfigurationError(
                f"trajectory_length must be >= 1, got {trajectory_length}"
            )
        if not (0.0 <= corridor_fraction <= 1.0):
            raise ConfigurationError(
                f"corridor_fraction must be in [0, 1], got {corridor_fraction}"
            )
        self._rng = as_generator(seed)
        self.trajectory_length = int(trajectory_length)
        self.corridor_fraction = float(corridor_fraction)
        self.noise_std_m = float(noise_std_m)

    # -- trip construction ---------------------------------------------------
    def _hub_index(self) -> int:
        weights = np.array([h[2] for h in _HUBS])
        return int(self._rng.choice(len(_HUBS), p=weights / weights.sum()))

    def _wander_trip(self, length: int) -> np.ndarray:
        lon, lat, _w, step = _HUBS[self._hub_index()]
        start = np.array([lon, lat]) + self._rng.normal(scale=step * 2.0, size=2)
        steps = self._rng.normal(scale=step * 0.25, size=(length, 2))
        # Mean-revert to the hub so trips stay in town.
        pts = np.empty((length, 2))
        pos = start
        hub = np.array([lon, lat])
        for i in range(length):
            pos = pos + steps[i] + 0.02 * (hub - pos)
            pts[i] = pos
        return pts

    def _corridor_trip(self, length: int) -> np.ndarray:
        a = self._hub_index()
        b = self._hub_index()
        while b == a:
            b = self._hub_index()
        start = np.array(_HUBS[a][:2])
        end = np.array(_HUBS[b][:2])
        t = np.linspace(0.0, 1.0, length)[:, None]
        line = start[None, :] * (1 - t) + end[None, :] * t
        # Lateral jitter grows mid-route (drivers deviate between cities).
        lateral = self._rng.normal(scale=0.004, size=(length, 2))
        lateral *= (0.3 + np.sin(math.pi * t)) if length > 1 else 1.0
        return line + lateral

    def _clip(self, pts: np.ndarray) -> np.ndarray:
        pts[:, 0] = np.clip(pts[:, 0], *BEIJING_LON)
        pts[:, 1] = np.clip(pts[:, 1], *BEIJING_LAT)
        return pts

    # -- public API -------------------------------------------------------------
    def generate(self, n: int) -> GeolifeData:
        """Generate exactly ``n`` (lon, lat, altitude) tuples."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        chunks: list[np.ndarray] = []
        total = 0
        while total < n:
            length = max(2, int(self._rng.poisson(self.trajectory_length)))
            length = min(length, n - total) or 1
            if self._rng.random() < self.corridor_fraction:
                trip = self._corridor_trip(length)
            else:
                trip = self._wander_trip(length)
            trip = self._clip(trip)
            chunks.append(trip)
            total += len(trip)
        xy = np.concatenate(chunks, axis=0)[:n]
        alt = altitude_at(xy) + self._rng.normal(scale=self.noise_std_m, size=n)
        return GeolifeData(xy=xy, altitude=alt)

    def stream(self, n: int, chunk_size: int = 65536) -> Iterator[np.ndarray]:
        """Yield the xy coordinates of :meth:`generate` in chunks.

        Convenience for exercising streaming interfaces; materialises
        one chunk at a time from a fresh generation.
        """
        data = self.generate(n)
        for start in range(0, n, chunk_size):
            yield data.xy[start:start + chunk_size]
