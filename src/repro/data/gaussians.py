"""Gaussian-mixture datasets for the clustering user task.

For Table I(c) the paper generated its own data: "Using two-dimensional
Gaussian distributions with different covariances, we generated 4
datasets, 2 of which were generated from 2 Gaussian distributions and
the other 2 were generated from a single Gaussian distribution."

:func:`clustering_datasets` reproduces those four datasets (two
one-cluster, two two-cluster, distinct covariances), and
:class:`GaussianMixture` is the general generator behind them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator


@dataclass
class MixtureComponent:
    """One 2-D Gaussian component."""

    mean: tuple[float, float]
    cov: tuple[tuple[float, float], tuple[float, float]]
    weight: float = 1.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        mean = np.asarray(self.mean, dtype=np.float64)
        cov = np.asarray(self.cov, dtype=np.float64)
        if mean.shape != (2,) or cov.shape != (2, 2):
            raise ConfigurationError("components must be 2-D")
        return mean, cov


class GaussianMixture:
    """Sampler for a weighted 2-D Gaussian mixture.

    Parameters
    ----------
    components:
        The mixture components; weights are normalised internally.
    seed:
        Seed or generator.
    """

    def __init__(self, components: list[MixtureComponent],
                 seed: int | np.random.Generator | None = 0) -> None:
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        self.components = list(components)
        weights = np.array([c.weight for c in components], dtype=np.float64)
        if np.any(weights <= 0):
            raise ConfigurationError("component weights must be positive")
        self._weights = weights / weights.sum()
        self._rng = as_generator(seed)

    @property
    def n_clusters(self) -> int:
        """Number of mixture components (the clustering ground truth)."""
        return len(self.components)

    def generate(self, n: int) -> np.ndarray:
        """Draw ``n`` points; returns ``(n, 2)``."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        counts = self._rng.multinomial(n, self._weights)
        parts: list[np.ndarray] = []
        for component, count in zip(self.components, counts):
            if count == 0:
                continue
            mean, cov = component.as_arrays()
            parts.append(self._rng.multivariate_normal(mean, cov, size=count))
        pts = np.concatenate(parts, axis=0)
        self._rng.shuffle(pts, axis=0)
        return pts


def clustering_datasets(seed: int | np.random.Generator | None = 0
                        ) -> list[tuple[str, GaussianMixture]]:
    """The four Table I(c) datasets: two 1-cluster, two 2-cluster.

    Covariances differ across datasets as in the paper; the two-cluster
    mixtures keep their components separated enough that the cluster
    count is unambiguous in the full data.
    """
    gen = as_generator(seed)
    seeds = gen.integers(0, 2**31 - 1, size=4)
    one_a = GaussianMixture(
        [MixtureComponent((0.0, 0.0), ((1.0, 0.3), (0.3, 0.7)))],
        seed=int(seeds[0]),
    )
    one_b = GaussianMixture(
        [MixtureComponent((2.0, -1.0), ((0.4, -0.2), (-0.2, 1.5)))],
        seed=int(seeds[1]),
    )
    two_a = GaussianMixture(
        [
            MixtureComponent((-2.2, 0.0), ((0.8, 0.0), (0.0, 0.8)), weight=0.55),
            MixtureComponent((2.2, 0.4), ((0.5, 0.2), (0.2, 0.9)), weight=0.45),
        ],
        seed=int(seeds[2]),
    )
    # Imbalanced mixture: the minority component is the kind of
    # "sparsely represented feature" uniform sampling misses (§I) —
    # at small K it draws only ~6% of the points and the minority blob
    # falls below visual salience, while VAS's coverage keeps it.
    two_b = GaussianMixture(
        [
            MixtureComponent((0.0, -2.4), ((1.2, 0.4), (0.4, 0.5)), weight=0.94),
            MixtureComponent((0.5, 2.4), ((0.6, -0.1), (-0.1, 1.1)), weight=0.06),
        ],
        seed=int(seeds[3]),
    )
    return [
        ("one-cluster-a", one_a),
        ("one-cluster-b", one_b),
        ("two-cluster-a", two_a),
        ("two-cluster-b", two_b),
    ]
