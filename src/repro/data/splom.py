"""The SPLOM synthetic dataset.

The paper's second dataset: "SPLOM, a synthetic dataset generated from
several Gaussian distributions that had been used in previous
visualization projects [4], [39].  We used parameters identical to
previous work, and generated a dataset of five columns and 1B tuples."

The immens/Profiler SPLOM generator draws five correlated columns from
Gaussian components.  We reproduce that structural recipe — a dominant
Gaussian cluster in five dimensions with per-column scales and pairwise
correlations — at laptop scale.  The paper itself notes SPLOM "has a
single Gaussian cluster", which is why its clustering study used a
separate generator (see :mod:`repro.data.gaussians`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator

#: Column names used by the SPLOM projects.
SPLOM_COLUMNS = ("a", "b", "c", "d", "e")

#: Mean vector of the dominant component.
_MEAN = np.array([0.0, 1.0, -0.5, 2.0, 0.0])

#: Covariance with mild pairwise correlation, mirroring the immens
#: generator's style (unit-ish scales, ±0.4 cross terms).
_COV = np.array([
    [1.00, 0.40, 0.10, 0.00, 0.20],
    [0.40, 1.20, 0.30, 0.10, 0.00],
    [0.10, 0.30, 0.80, 0.40, 0.10],
    [0.00, 0.10, 0.40, 1.50, 0.30],
    [0.20, 0.00, 0.10, 0.30, 0.90],
])


@dataclass
class SplomData:
    """A generated SPLOM dataset of five named columns."""

    values: np.ndarray  # (N, 5)

    def __len__(self) -> int:
        return len(self.values)

    def column(self, name: str) -> np.ndarray:
        """One column by SPLOM name ('a'..'e')."""
        try:
            idx = SPLOM_COLUMNS.index(name)
        except ValueError:
            raise ConfigurationError(
                f"unknown SPLOM column {name!r}; expected one of {SPLOM_COLUMNS}"
            ) from None
        return self.values[:, idx]

    def pair(self, x: str = "a", y: str = "b") -> np.ndarray:
        """An ``(N, 2)`` scatter-plot projection of two columns."""
        return np.stack([self.column(x), self.column(y)], axis=1)

    @property
    def columns(self) -> dict[str, np.ndarray]:
        return {name: self.values[:, i] for i, name in enumerate(SPLOM_COLUMNS)}


class SplomGenerator:
    """Seeded SPLOM generator.

    Parameters
    ----------
    seed:
        Seed or generator.
    heavy_tail_fraction:
        A small fraction of rows drawn from a wider component, giving
        the scatter plots the sparse fringe visible in the published
        SPLOM figures (and giving VAS sparse structure to preserve).
    """

    def __init__(self, seed: int | np.random.Generator | None = 0,
                 heavy_tail_fraction: float = 0.03) -> None:
        if not (0.0 <= heavy_tail_fraction < 1.0):
            raise ConfigurationError(
                f"heavy_tail_fraction must be in [0, 1), got {heavy_tail_fraction}"
            )
        self._rng = as_generator(seed)
        self.heavy_tail_fraction = float(heavy_tail_fraction)

    def generate(self, n: int) -> SplomData:
        """Generate ``n`` rows of the five-column dataset."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        n_tail = int(round(n * self.heavy_tail_fraction))
        n_core = n - n_tail
        core = self._rng.multivariate_normal(_MEAN, _COV, size=n_core)
        if n_tail:
            tail = self._rng.multivariate_normal(_MEAN, _COV * 9.0, size=n_tail)
            values = np.concatenate([core, tail], axis=0)
            self._rng.shuffle(values, axis=0)
        else:
            values = core
        return SplomData(values=values)
