"""Dataset substrate: Geolife-like GPS data, SPLOM, Gaussian mixtures.

Each generator is seeded and deterministic, standing in for the
datasets the paper evaluates on (see DESIGN.md §2 for the substitution
rationale).
"""

from .gaussians import GaussianMixture, MixtureComponent, clustering_datasets
from .geolife import (
    BEIJING_LAT,
    BEIJING_LON,
    GeolifeData,
    GeolifeGenerator,
    altitude_at,
)
from .splom import SPLOM_COLUMNS, SplomData, SplomGenerator
from .streams import PointStream
from .timeseries import (
    TIMESERIES_COLUMNS,
    TimeSeriesData,
    TimeSeriesGenerator,
)

__all__ = [
    "BEIJING_LAT",
    "BEIJING_LON",
    "GaussianMixture",
    "GeolifeData",
    "GeolifeGenerator",
    "MixtureComponent",
    "PointStream",
    "SPLOM_COLUMNS",
    "SplomData",
    "SplomGenerator",
    "TIMESERIES_COLUMNS",
    "TimeSeriesData",
    "TimeSeriesGenerator",
    "altitude_at",
    "clustering_datasets",
]
