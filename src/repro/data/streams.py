"""Chunked streaming over datasets.

The paper's architecture (Fig 3) runs samplers against table scans; a
:class:`PointStream` models that: a re-iterable source of ``(n_i, 2)``
chunks with a known total length, plus helpers to shuffle scan order
and to cap the number of rows (for time-boxed benchmark runs).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import ConfigurationError
from ..geometry import as_points
from ..rng import as_generator


class PointStream:
    """A re-iterable chunked view over an in-memory point array.

    Parameters
    ----------
    points:
        The backing ``(N, 2)`` array.
    chunk_size:
        Rows per chunk.
    shuffle_seed:
        When not ``None``, iteration follows a fixed random permutation
        of the rows (drawn once, so every pass sees the same order —
        matching an RDBMS scan over a shuffled clustering order).
    limit:
        Optional cap on total rows yielded.
    """

    def __init__(self, points: np.ndarray, chunk_size: int = 65536,
                 shuffle_seed: int | None = None,
                 limit: int | None = None) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self._points = as_points(points)
        self.chunk_size = int(chunk_size)
        if limit is not None and limit < 0:
            raise ConfigurationError(f"limit must be >= 0, got {limit}")
        self._limit = limit
        if shuffle_seed is None:
            self._order = None
        else:
            self._order = as_generator(shuffle_seed).permutation(len(self._points))

    def __len__(self) -> int:
        n = len(self._points)
        if self._limit is not None:
            n = min(n, self._limit)
        return n

    def __iter__(self) -> Iterator[np.ndarray]:
        n = len(self)
        source = (self._points if self._order is None
                  else self._points[self._order])
        for start in range(0, n, self.chunk_size):
            yield source[start:min(start + self.chunk_size, n)]

    def factory(self) -> Callable[[], Iterator[np.ndarray]]:
        """A zero-arg callable yielding a fresh pass (for Interchange)."""
        return self.__iter__
