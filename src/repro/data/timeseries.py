"""A synthetic time-series workload for downsampling scenarios.

The x axis is a timestamp, the y axis a sensor-style reading: slow
trend plus daily seasonality plus noise, with a small fraction of
spike rows (outages, surges) riding far off the band.  Time series are
the degenerate-aspect-ratio case for visualization-aware sampling —
the data is dense along x and thin along y, and naive uniform
downsampling flattens exactly the spikes an analyst zooms in on — so
the same VAS machinery that serves scatter plots is exercised here on
a workload where preserving sparse structure is visibly the point.

Deterministic per seed, like every generator in :mod:`repro.data`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator

#: Column names of the generated table.
TIMESERIES_COLUMNS = ("timestamp", "value")

#: Seconds per synthetic day (the seasonality period).
_DAY = 86_400.0


@dataclass
class TimeSeriesData:
    """A generated series: ``timestamp`` (seconds) vs. ``value``."""

    timestamps: np.ndarray  # (N,) float64, strictly increasing
    values: np.ndarray      # (N,) float64

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def xy(self) -> np.ndarray:
        """The ``(N, 2)`` plot projection (x = timestamp, y = value)."""
        return np.stack([self.timestamps, self.values], axis=1)

    @property
    def columns(self) -> dict[str, np.ndarray]:
        return {"timestamp": self.timestamps, "value": self.values}


class TimeSeriesGenerator:
    """Seeded trend + seasonality + noise + spikes generator.

    Parameters
    ----------
    seed:
        Seed or generator.
    spike_fraction:
        Fraction of rows replaced by spikes several band-widths off
        the signal — the sparse features a downsampler must keep.
    cadence_seconds:
        Mean spacing between consecutive readings (jittered, so
        timestamps are irregular like real sensor feeds but always
        strictly increasing).
    """

    def __init__(self, seed: int | np.random.Generator | None = 0,
                 spike_fraction: float = 0.01,
                 cadence_seconds: float = 60.0) -> None:
        if not (0.0 <= spike_fraction < 1.0):
            raise ConfigurationError(
                f"spike_fraction must be in [0, 1), got {spike_fraction}"
            )
        if cadence_seconds <= 0:
            raise ConfigurationError(
                f"cadence_seconds must be positive, got {cadence_seconds}"
            )
        self._rng = as_generator(seed)
        self.spike_fraction = float(spike_fraction)
        self.cadence_seconds = float(cadence_seconds)

    def generate(self, n: int) -> TimeSeriesData:
        """Generate ``n`` readings."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        rng = self._rng
        # Irregular but strictly increasing timestamps: exponential
        # inter-arrival gaps around the cadence, floored above zero.
        gaps = rng.exponential(self.cadence_seconds, size=n)
        gaps = np.maximum(gaps, self.cadence_seconds * 1e-3)
        timestamps = np.cumsum(gaps)
        days = timestamps / _DAY
        trend = 0.08 * days + 0.5 * np.sin(days * 2.0 * np.pi / 30.0)
        seasonal = (1.0 * np.sin(days * 2.0 * np.pi)
                    + 0.3 * np.sin(days * 4.0 * np.pi + 1.3))
        noise = rng.normal(0.0, 0.15, size=n)
        values = 10.0 + trend + seasonal + noise
        n_spikes = int(round(n * self.spike_fraction))
        if n_spikes:
            where = rng.choice(n, size=n_spikes, replace=False)
            sign = rng.choice([-1.0, 1.0], size=n_spikes)
            magnitude = rng.uniform(4.0, 12.0, size=n_spikes)
            values[where] += sign * magnitude
        return TimeSeriesData(timestamps=timestamps, values=values)
