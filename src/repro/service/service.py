"""The VAS service facade: ingest, build-or-reuse, answer queries.

:class:`VasService` is the one code path behind the CLI verbs *and*
the HTTP endpoints.  It owns

* **ingest** — ``CSV → Table`` with header-derived column names;
* **builds** — flat samples and zoom ladders, delegating to the same
  :func:`~repro.tasks.study.build_method_sample` /
  :func:`~repro.storage.zoom.build_zoom_ladder` machinery the library
  exposes (``engine=``/``workers=`` pass straight through) and caching
  every result in the workspace under its content-hash key;
* **queries** — viewport requests served from cached ladders and
  point-/time-budget requests served from cached flat samples, with a
  small LRU of decoded artifacts so the hot path re-reads nothing.

The offline/online asymmetry of the paper (§II-B: build once, serve
many) becomes concrete here: on the warm path no Interchange ever
runs — a property the test suite asserts by monkeypatching the
builders to explode.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.epsilon import epsilon_from_diameter
from ..errors import ReproError, SampleNotFoundError, SchemaError
from ..sampling.base import SampleResult
from ..storage.query import VizResult, ZoomQuery, answer_zoom_query
from ..storage.samples import SampleStore
from ..storage.table import Table
from ..storage.zoom import (
    DEFAULT_K_PER_TILE,
    DEFAULT_LEVELS,
    ZoomLadder,
    build_zoom_ladder,
)
from ..tasks.study import build_method_sample
from ..viz.scatter import Viewport
from .workspace import Workspace, validate_table_name


class _LRU:
    """A tiny LRU map for decoded artifacts (ladders, sample stores)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SchemaError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._items:
            return None
        self._items.move_to_end(key)
        return self._items[key]

    def put(self, key, value) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)

    def drop(self, key) -> None:
        self._items.pop(key, None)

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class BuildOutcome:
    """What one build-or-reuse request produced.

    ``cached`` is True when the workspace already held the artifact —
    i.e. the request cost a manifest read, not an Interchange run.
    """

    key: str
    kind: str
    cached: bool
    manifest: dict
    result: SampleResult | None = field(default=None, repr=False)
    ladder: ZoomLadder | None = field(default=None, repr=False)


class VasService:
    """Facade over one :class:`Workspace`: builds and query answering."""

    def __init__(self, workspace: Workspace,
                 ladder_cache_size: int = 8,
                 store_cache_size: int = 16) -> None:
        self.workspace = workspace
        self._ladders = _LRU(ladder_cache_size)
        self._stores = _LRU(store_cache_size)
        # (table, x, y, content_hash) -> newest ladder build key, so a
        # warm viewport query costs one decoded-ladder lookup rather
        # than a scan over every build.json in the cache directory.
        self._ladder_keys = _LRU(4 * ladder_cache_size)
        # Builds mutate the cache directory and the LRUs; the HTTP
        # front end serves from threads, so mutation is serialised.
        self._lock = threading.RLock()

    # -- ingest ------------------------------------------------------------
    def ingest_csv(self, path, name: str | None = None,
                   replace: bool = False,
                   strict_header: bool = True) -> dict:
        """Load a header-row CSV into the workspace as a table.

        Column names come from the header; every column is numeric
        float64 (the CSV contract the CLI has always used).  With
        ``strict_header=False`` a header that does not match the data
        (wrong column count, duplicates) falls back to generated names
        instead of erroring — the CLI's one-shot CSV mode uses this to
        stay as forgiving as the pre-workspace loader, which only ever
        skipped the header row.
        """
        csv_path = Path(path)
        try:
            with open(csv_path) as fh:
                header = fh.readline().strip()
        except OSError as exc:
            raise SchemaError(f"cannot read {csv_path}: {exc}") from exc
        names = [c.strip() or f"c{i}"
                 for i, c in enumerate(header.split(","))]
        try:
            data = np.loadtxt(csv_path, delimiter=",", skiprows=1, ndmin=2)
        except ValueError as exc:
            raise SchemaError(
                f"{csv_path}: not a numeric CSV: {exc}"
            ) from exc
        if data.shape[1] < 2:
            raise SchemaError(
                f"{csv_path}: expected at least two columns, "
                f"got {data.shape[1]}"
            )
        if len(names) != data.shape[1] or len(set(names)) != len(names):
            if strict_header:
                raise SchemaError(
                    f"{csv_path}: header {header!r} does not name the "
                    f"{data.shape[1]} data columns uniquely"
                )
            names = [f"c{i}" for i in range(data.shape[1])]
        table_name = validate_table_name(name or csv_path.stem)
        table = Table.from_arrays(
            table_name, {col: data[:, i] for i, col in enumerate(names)}
        )
        with self._lock:
            self.workspace.add_table(table, replace=replace)
            return self.workspace.table_info(table_name)

    def tables(self) -> list[dict]:
        return [self.workspace.table_info(n)
                for n in self.workspace.table_names]

    # -- column resolution -------------------------------------------------
    def _resolve_xy(self, table_name: str, x: str | None,
                    y: str | None) -> tuple[str, str]:
        """Explicit columns, or the table's first two numeric columns.

        Resolved from column *metadata* (the table manifest), so warm
        paths never decode the column arrays just to learn the default
        plotting pair.
        """
        if x is not None and y is not None:
            return x, y
        numeric = [c["name"] for c in self.workspace.table_columns(table_name)
                   if c["type"] in ("float64", "int64")]
        if len(numeric) < 2:
            raise SchemaError(
                f"table {table_name!r} has fewer than two numeric columns; "
                "pass x/y explicitly"
            )
        return x or numeric[0], y or numeric[1]

    # -- builds ------------------------------------------------------------
    def build_sample(self, table_name: str, k: int,
                     x: str | None = None, y: str | None = None,
                     method: str = "vas", seed: int = 0,
                     engine: str = "batched", workers: int = 1) -> BuildOutcome:
        """Build-or-reuse one flat sample.

        The cache key covers everything that determines the *output*:
        data content hash, columns, method, k, seed, and the shard
        count (``workers > 1`` changes the sample).  The engine does
        **not** enter the key — all engines are bit-identical (the
        parity suite enforces it), so a sample built with one engine is
        a valid cache hit for any other.  The engine that actually ran
        is recorded in the manifest for provenance.
        """
        with self._lock:
            x, y = self._resolve_xy(table_name, x, y)
            params = {"x": x, "y": y, "method": method, "k": int(k),
                      "seed": int(seed),
                      "shards": int(workers) if workers > 1 else 1}
            key = self.workspace.build_key("sample", table_name, params)
            manifest = self.workspace.cached_manifest(key)
            if manifest is not None:
                return BuildOutcome(
                    key=key, kind="sample", cached=True, manifest=manifest,
                    result=self.workspace.load_sample_build(key),
                )
            # Cache miss: only now is the table actually decoded.
            xy = self.workspace.table(table_name).xy(x, y)
            result = build_method_sample(
                method, xy, int(k), seed=int(seed),
                epsilon=epsilon_from_diameter(xy, rng=int(seed)),
                engine=engine, workers=int(workers),
            )
            manifest = self.workspace.store_sample_build(
                key, table_name, params, result,
                extra={"built_with_engine": engine,
                       "built_with_workers": int(workers)},
            )
            # Any assembled store for this column pair is now stale.
            self._stores.drop((table_name, x, y,
                               manifest["content_hash"]))
            return BuildOutcome(key=key, kind="sample", cached=False,
                                manifest=manifest, result=result)

    def build_ladder(self, table_name: str,
                     x: str | None = None, y: str | None = None,
                     levels: int = DEFAULT_LEVELS,
                     k_per_tile: int = DEFAULT_K_PER_TILE,
                     seed: int = 0) -> BuildOutcome:
        """Build-or-reuse one multi-resolution zoom ladder."""
        with self._lock:
            x, y = self._resolve_xy(table_name, x, y)
            params = {"x": x, "y": y, "levels": int(levels),
                      "k_per_tile": int(k_per_tile), "seed": int(seed)}
            key = self.workspace.build_key("ladder", table_name, params)
            manifest = self.workspace.cached_manifest(key)
            if manifest is not None:
                ladder = self._ladders.get(key)
                if ladder is None:
                    ladder = self.workspace.load_ladder_build(key)
                    self._ladders.put(key, ladder)
                return BuildOutcome(key=key, kind="ladder", cached=True,
                                    manifest=manifest, ladder=ladder)
            # Cache miss: only now is the table actually decoded.
            ladder = build_zoom_ladder(
                self.workspace.table(table_name).xy(x, y),
                levels=int(levels),
                k_per_tile=int(k_per_tile), rng=int(seed),
            )
            manifest = self.workspace.store_ladder_build(
                key, table_name, params,
                ladder, extra={"stats": ladder.stats()},
            )
            self._ladders.put(key, ladder)
            # This build is now the newest ladder for the column pair.
            self._ladder_keys.put(
                (table_name, x, y, manifest["content_hash"]), key)
            return BuildOutcome(key=key, kind="ladder", cached=False,
                                manifest=manifest, ladder=ladder)

    # -- query answering ---------------------------------------------------
    def _current_builds(self, kind: str, table_name: str, x: str,
                        y: str) -> list[dict]:
        """Cached builds for a column pair of the table *as it is now*.

        Builds whose recorded ``content_hash`` differs from the table's
        current hash are invisible: after a ``--replace`` re-ingest the
        old data's artifacts must not answer queries — changed data
        means a cache miss, exactly as the build key promises.
        """
        current = self.workspace.table_hash(table_name)
        return [
            m for m in self.workspace.builds(kind=kind, table=table_name)
            if m["params"]["x"] == x and m["params"]["y"] == y
            and m["content_hash"] == current
        ]

    def _ladder_for_resolved(self, table_name: str, x: str,
                             y: str) -> ZoomLadder:
        """:meth:`ladder_for` with the column pair already resolved."""
        memo_key = (table_name, x, y,
                    self.workspace.table_hash(table_name))
        key = self._ladder_keys.get(memo_key)
        if key is None:
            candidates = self._current_builds("ladder", table_name, x, y)
            if not candidates:
                raise SampleNotFoundError(
                    f"no zoom ladder built for {table_name}.({x}, {y}) "
                    "at its current contents; run repro zoom-build / "
                    "POST /build first"
                )
            key = candidates[-1]["key"]  # builds() sorts oldest→newest
            self._ladder_keys.put(memo_key, key)
        ladder = self._ladders.get(key)
        if ladder is None:
            ladder = self.workspace.load_ladder_build(key)
            self._ladders.put(key, ladder)
        return ladder

    def ladder_for(self, table_name: str, x: str | None = None,
                   y: str | None = None) -> ZoomLadder:
        """The newest cached ladder for a column pair (LRU-decoded).

        Pure lookup: a ladder is *never* built here.  Interactive
        queries must not absorb a multi-second Interchange run — the
        caller gets :class:`SampleNotFoundError` and decides whether to
        pay for a ``/build``.
        """
        with self._lock:
            x, y = self._resolve_xy(table_name, x, y)
            return self._ladder_for_resolved(table_name, x, y)

    def viewport(self, table_name: str, bbox: tuple[float, float, float, float],
                 x: str | None = None, y: str | None = None,
                 zoom: int | None = None,
                 max_points: int | None = None) -> VizResult:
        """Answer one viewport request from a cached ladder."""
        with self._lock:
            x, y = self._resolve_xy(table_name, x, y)
            ladder = self._ladder_for_resolved(table_name, x, y)
        query = ZoomQuery(
            table=table_name, x_column=x, y_column=y,
            viewport=Viewport(*map(float, bbox)),
            zoom=zoom, max_points=max_points,
        )
        return answer_zoom_query(ladder, query)

    def _store_for(self, table_name: str, x: str, y: str) -> SampleStore:
        """A :class:`SampleStore` assembled from cached sample builds.

        Keyed by content hash too, so a re-ingest naturally starts a
        fresh store instead of serving the old data's rungs.
        """
        cache_key = (table_name, x, y,
                     self.workspace.table_hash(table_name))
        store = self._stores.get(cache_key)
        if store is not None:
            return store
        store = SampleStore()
        for manifest in self._current_builds("sample", table_name, x, y):
            result = self.workspace.load_sample_build(manifest["key"])
            store.add(table_name, x, y, result)
        self._stores.put(cache_key, store)
        return store

    def sample_query(self, table_name: str,
                     x: str | None = None, y: str | None = None,
                     method: str = "vas",
                     max_points: int | None = None,
                     time_budget_seconds: float | None = None,
                     seconds_per_point: float = 1e-6,
                     fixed_overhead_seconds: float = 0.0,
                     bbox: tuple[float, float, float, float] | None = None,
                     ) -> VizResult:
        """Serve a budgeted sample request from the cached flat rungs.

        The §II-D selection rule against the workspace: an explicit
        ``max_points`` wins, else a time budget converts to points,
        else the largest cached sample is returned.  ``bbox`` applies a
        viewport filter after selection (the Fig 1 pattern).
        """
        with self._lock:
            x, y = self._resolve_xy(table_name, x, y)
            store = self._store_for(table_name, x, y)
            if max_points is not None:
                sample = store.for_point_budget(table_name, x, y, method,
                                                max_points)
            elif time_budget_seconds is not None:
                sample = store.for_time_budget(
                    table_name, x, y, method, time_budget_seconds,
                    seconds_per_point, fixed_overhead_seconds,
                )
            else:
                sample = store.for_point_budget(table_name, x, y, method,
                                                2**62)
        points, weights = sample.points, sample.weights
        if bbox is not None:
            mask = Viewport(*map(float, bbox)).contains(points)
            points = points[mask]
            weights = weights[mask] if weights is not None else None
        return VizResult(
            points=points, weights=weights, method=sample.method,
            sample_size=len(sample), returned_rows=len(points),
        )

    def info(self) -> dict:
        """Workspace summary plus service-side cache occupancy."""
        payload = self.workspace.info()
        payload["decoded_ladders"] = len(self._ladders)
        payload["decoded_stores"] = len(self._stores)
        return payload


def service_error_status(exc: ReproError) -> int:
    """HTTP status for a service-layer error."""
    from ..errors import TableNotFoundError

    if isinstance(exc, (TableNotFoundError, SampleNotFoundError)):
        return 404
    return 400
