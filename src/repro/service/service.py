"""The VAS service facade: ingest, build-or-reuse, append, answer.

:class:`VasService` is the one code path behind the CLI verbs *and*
the HTTP endpoints.  It owns

* **ingest** — ``CSV → Table`` with header-derived column names;
* **builds** — flat samples and zoom ladders, delegating to the same
  :func:`~repro.tasks.study.build_method_sample` /
  :func:`~repro.storage.zoom.build_zoom_ladder` machinery the library
  exposes (``engine=``/``workers=`` pass straight through) and caching
  every result in the workspace under its content-hash key;
* **appends + maintenance** — new rows advance the table's version,
  then each cached artifact is brought forward *incrementally*: flat
  VAS samples replay only the delta rows through
  :class:`~repro.core.maintenance.SampleMaintainer` (§II-B's
  "periodically updated when new data arrives", O(delta·K) online
  work), zoom ladders are patched tile-by-tile
  (:func:`~repro.storage.zoom.patch_zoom_ladder`), and each advanced
  artifact is persisted as a new lineage entry next to — never over —
  its parent.  A :class:`MaintenancePolicy` decides when an artifact
  is advanced versus left stale or flagged for an offline rebuild;
* **compaction** — append streams accumulate delta segments and
  journal lines; a :class:`CompactionPolicy` decides when to pay the
  fold (``compact_after_segments`` / ``compact_after_bytes``, gated
  after append exactly like maintenance).  Compaction
  garbage-collects orphaned cache entries and superseded lineage
  hops, then folds the table's storage around the versions the
  surviving artifacts still reference — rolling hashes are carried
  verbatim, so every cache key survives.  ``repro compact`` / ``POST
  /compact`` trigger it on demand;
* **queries** — viewport requests served from cached ladders and
  point-/time-budget requests served from cached flat samples, with a
  small LRU of decoded artifacts so the hot path re-reads nothing.

The offline/online asymmetry of the paper (§II-B: build once, serve
many) becomes concrete here: on the warm path no Interchange ever
runs — a property the test suite asserts by monkeypatching the
builders to explode — and that invariant now survives appends, because
maintenance never calls a builder either.

Locking is split by role: mutations (ingest, build, append) serialise
on one lock, while GET-path readers only take a narrow lock around the
decoded-artifact LRUs — concurrent viewport queries never queue behind
an append.  Readers racing a mutation see either the previous or the
new table version, each with its matching artifacts, because manifests
are replaced atomically and artifacts are resolved through the version
history rather than a single "current" pointer.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from ..core.epsilon import epsilon_from_diameter
from ..core.kernel import make_kernel
from ..core.maintenance import SampleMaintainer
from ..errors import ReproError, SampleNotFoundError, SchemaError
from ..rng import as_generator, spawn
from ..sampling.base import SampleResult
from ..storage.predicates import Predicate, parse_predicate
from ..storage.query import VizResult, ZoomQuery, answer_zoom_query
from ..storage.samples import SampleStore
from ..storage.table import Table
from ..storage.zoom import (
    DEFAULT_K_PER_TILE,
    DEFAULT_LEVELS,
    TileData,
    ZoomLadder,
    build_zoom_ladder,
    extract_tile,
    patch_zoom_ladder,
)
from ..tasks import (
    Observer,
    PerceptionParams,
    count_visual_clusters,
    make_clustering_question,
    make_density_questions,
    make_regression_questions,
    score_clustering,
    score_density,
    score_regression,
)
from ..tasks.study import build_method_sample
from ..viz.scatter import Viewport
from .workspace import Workspace, validate_table_name

#: Sample methods the maintenance path can advance incrementally.
#: Uniform/stratified samples have no Expand/Shrink delta story — they
#: serve stale (bounded by the policy) until an offline rebuild.
MAINTAINABLE_METHODS = ("vas", "vas+density")


@dataclass(frozen=True)
class MaintenancePolicy:
    """When appends advance cached artifacts, and when they give up.

    Parameters
    ----------
    maintain_after_rows:
        Advance an artifact once at least this many rows separate it
        from the current table version (``1`` = maintain on every
        append).  Below the threshold the artifact keeps serving with
        its staleness reported, and the accumulated delta is applied
        in one batch when the threshold is crossed — maintenance work
        is O(delta·K) either way, batching just amortises the
        per-append constant.
    rebuild_after_rows:
        The staleness bound: an artifact lagging the table by more
        than this many rows is no longer patched online but flagged
        ``needs_rebuild`` (served stale until an offline ``POST
        /build`` / ``repro zoom-build`` replaces it).  ``None``
        disables the bound — maintenance always catches up.
    """

    maintain_after_rows: int = 1
    rebuild_after_rows: int | None = None

    def __post_init__(self) -> None:
        if self.maintain_after_rows < 1:
            raise SchemaError(
                f"maintain_after_rows must be >= 1, got "
                f"{self.maintain_after_rows}"
            )
        if self.rebuild_after_rows is not None and self.rebuild_after_rows < 1:
            raise SchemaError(
                f"rebuild_after_rows must be >= 1 or None, got "
                f"{self.rebuild_after_rows}"
            )
        if (self.rebuild_after_rows is not None
                and self.maintain_after_rows > self.rebuild_after_rows):
            raise SchemaError(
                "maintain_after_rows must not exceed rebuild_after_rows "
                f"(got {self.maintain_after_rows} > "
                f"{self.rebuild_after_rows}): an artifact would be "
                "deferred past the point it is flagged for rebuild"
            )


@dataclass(frozen=True)
class CompactionPolicy:
    """When appends trigger a storage compaction, mirroring how
    :class:`MaintenancePolicy` gates maintenance.

    Parameters
    ----------
    compact_after_segments:
        Compact a table once its on-disk (or in-memory) segment count
        reaches this many.  The journal and the per-append cost both
        stay bounded by this knob: between compactions an append is
        O(delta), and the fold is amortised over the window.  ``None``
        disables the segment trigger.
    compact_after_bytes:
        Compact once the table's ``reclaimable_bytes`` estimate (see
        :func:`repro.storage.table_storage_stats`) reaches this many.
        ``None`` disables the byte trigger.

    With both thresholds ``None`` nothing auto-compacts; ``repro
    compact`` / ``POST /compact`` still work on demand.
    """

    compact_after_segments: int | None = 64
    compact_after_bytes: int | None = None

    def __post_init__(self) -> None:
        if (self.compact_after_segments is not None
                and self.compact_after_segments < 2):
            raise SchemaError(
                f"compact_after_segments must be >= 2 or None, got "
                f"{self.compact_after_segments}"
            )
        if (self.compact_after_bytes is not None
                and self.compact_after_bytes < 1):
            raise SchemaError(
                f"compact_after_bytes must be >= 1 or None, got "
                f"{self.compact_after_bytes}"
            )

    def should_compact(self, stats: dict, baseline: dict | None = None) -> bool:
        """Does one table's storage-stats block cross a threshold?

        ``baseline`` is the stats block recorded right after the
        table's previous compaction: thresholds measure *growth since
        then*, not absolute size.  Without it, artifacts pinning many
        version boundaries (segments compaction cannot fold) would
        keep the absolute count at the threshold forever and every
        append would pay a futile compaction.
        """
        base_segments = (baseline or {}).get("segments", 0)
        base_bytes = (baseline or {}).get("reclaimable_bytes", 0)
        if (self.compact_after_segments is not None
                and stats["segments"] - base_segments
                >= self.compact_after_segments):
            return True
        return (self.compact_after_bytes is not None
                and stats["reclaimable_bytes"] - base_bytes
                >= self.compact_after_bytes)


class _LRU:
    """A tiny LRU map for decoded artifacts (ladders, sample stores)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SchemaError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._items:
            return None
        self._items.move_to_end(key)
        return self._items[key]

    def put(self, key, value) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)

    def drop(self, key) -> None:
        self._items.pop(key, None)

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class BuildOutcome:
    """What one build-or-reuse request produced.

    ``cached`` is True when the workspace already held the artifact —
    i.e. the request cost a manifest read, not an Interchange run.
    """

    key: str
    kind: str
    cached: bool
    manifest: dict
    result: SampleResult | None = field(default=None, repr=False)
    ladder: ZoomLadder | None = field(default=None, repr=False)


class VasService:
    """Facade over one :class:`Workspace`: builds and query answering."""

    def __init__(self, workspace: Workspace,
                 ladder_cache_size: int = 8,
                 store_cache_size: int = 16,
                 policy: MaintenancePolicy | None = None,
                 compaction: CompactionPolicy | None = None) -> None:
        self.workspace = workspace
        self.policy = policy or MaintenancePolicy()
        self.compaction = compaction or CompactionPolicy()
        self._ladders = _LRU(ladder_cache_size)
        self._stores = _LRU(store_cache_size)
        # (table, x, y, content_hash) -> newest ladder build key, so a
        # warm viewport query costs one decoded-ladder lookup rather
        # than a scan over every build.json in the cache directory.
        self._ladder_keys = _LRU(4 * ladder_cache_size)
        # Two locks, split by role.  Mutations (ingest, build, append
        # and its maintenance) serialise on the mutate lock; the cache
        # lock only guards the decoded-artifact LRU dicts and is held
        # for dict operations, never for decode or I/O — so GET-path
        # readers cannot queue behind a build or an append.
        self._mutate_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        # Per-table storage stats recorded after the last compaction —
        # the CompactionPolicy measures growth against this, so pinned
        # segment boundaries never cause a compact-per-append loop.
        # Only touched under the mutate lock.
        self._compact_baseline: dict[str, dict] = {}
        # Mutation epoch: odd while a mutation is in flight, bumped on
        # entry and exit.  Readers capture it before assembling a
        # derived cache entry and only publish if it is unchanged and
        # even — otherwise a reader descheduled mid-assembly could
        # insert a pre-maintenance store/memo *after* the mutator's
        # invalidation pass and pin stale data under the new hash.
        self._mutations = 0

    # -- replication role --------------------------------------------------

    @property
    def role(self) -> str:
        """``"leader"`` or ``"follower"`` — who owns the journal."""
        return "follower" if self.workspace.read_only else "leader"

    def follower_lag(self) -> dict | None:
        """``{"versions", "seconds"}`` behind the leader, or ``None``
        when this process *is* the leader."""
        return self.workspace.lag()

    def _check_writable(self, operation: str) -> None:
        if self.workspace.read_only:
            from ..errors import ReadOnlyError

            raise ReadOnlyError(operation, str(self.workspace.root))

    def _mutating(self):
        service = self

        class _Mutation:
            def __enter__(self):
                service._mutate_lock.acquire()
                service._mutations += 1
                return self

            def __exit__(self, *exc):
                service._mutations += 1
                service._mutate_lock.release()
                return False

        return _Mutation()

    def _read_token(self) -> int:
        return self._mutations

    def _read_attempts(self) -> int:
        """Retry budget for the lookup-decode read paths.

        In-process readers race their own mutator under the epoch
        guard: one fresh scan after a failure is enough, because the
        successor of a pruned entry is durably written before the
        prune.  A follower races a *separate* leader process through
        the filesystem, where each retry must also re-sync the polled
        view — give it two extra rounds to cross a fast append train."""
        return 4 if self.workspace.read_only else 2

    def _publishable(self, token: int) -> bool:
        """May a derived cache entry assembled since ``token`` be
        published?  Only if no mutation started or finished meanwhile."""
        current = self._mutations
        return current == token and current % 2 == 0

    # -- LRU access (the only state readers share with mutators) ----------
    def _lru_get(self, lru: _LRU, key):
        with self._cache_lock:
            return lru.get(key)

    def _lru_put(self, lru: _LRU, key, value) -> None:
        with self._cache_lock:
            lru.put(key, value)

    # -- ingest ------------------------------------------------------------
    @staticmethod
    def _read_csv(csv_path: Path,
                  strict_header: bool) -> tuple[list[str], np.ndarray]:
        """``(column names, (n, cols) float64 data)`` from a header CSV.

        With ``strict_header=False`` a header that does not match the
        data (wrong column count, duplicates) falls back to generated
        names instead of erroring.
        """
        try:
            with open(csv_path) as fh:
                header = fh.readline().strip()
        except OSError as exc:
            raise SchemaError(f"cannot read {csv_path}: {exc}") from exc
        names = [c.strip() or f"c{i}"
                 for i, c in enumerate(header.split(","))]
        try:
            data = np.loadtxt(csv_path, delimiter=",", skiprows=1, ndmin=2)
        except ValueError as exc:
            raise SchemaError(
                f"{csv_path}: not a numeric CSV: {exc}"
            ) from exc
        if data.shape[1] < 2:
            raise SchemaError(
                f"{csv_path}: expected at least two columns, "
                f"got {data.shape[1]}"
            )
        if len(names) != data.shape[1] or len(set(names)) != len(names):
            if strict_header:
                raise SchemaError(
                    f"{csv_path}: header {header!r} does not name the "
                    f"{data.shape[1]} data columns uniquely"
                )
            names = [f"c{i}" for i in range(data.shape[1])]
        return names, data

    def ingest_csv(self, path, name: str | None = None,
                   replace: bool = False,
                   strict_header: bool = True) -> dict:
        """Load a header-row CSV into the workspace as a table.

        Column names come from the header; every column is numeric
        float64 (the CSV contract the CLI has always used).  The
        CLI's one-shot CSV mode passes ``strict_header=False`` to stay
        as forgiving as the pre-workspace loader, which only ever
        skipped the header row.
        """
        self._check_writable("ingest")
        csv_path = Path(path)
        names, data = self._read_csv(csv_path, strict_header)
        table_name = validate_table_name(name or csv_path.stem)
        table = Table.from_arrays(
            table_name, {col: data[:, i] for i, col in enumerate(names)}
        )
        with self._mutating():
            self.workspace.add_table(table, replace=replace)
            # A (re-)ingest starts a fresh storage history; any
            # compaction floor from replaced data is meaningless.
            self._compact_baseline.pop(table_name, None)
            return self.workspace.table_info(table_name)

    def tables(self) -> list[dict]:
        """Per-table summaries including version + artifact staleness.

        One cache-directory scan serves every table's staleness block.
        """
        snapshot = self.workspace.builds()
        out = []
        for name in self.workspace.table_names:
            info = self.workspace.table_summary(name)
            info["staleness"] = self._staleness(
                name, builds=[m for m in snapshot
                              if m.get("table") == name])
            out.append(info)
        return out

    # -- column resolution -------------------------------------------------
    def _resolve_xy(self, table_name: str, x: str | None,
                    y: str | None) -> tuple[str, str]:
        """Explicit columns, or the table's first two numeric columns.

        Resolved from column *metadata* (the table manifest), so warm
        paths never decode the column arrays just to learn the default
        plotting pair.
        """
        if x is not None and y is not None:
            return x, y
        numeric = [c["name"] for c in self.workspace.table_columns(table_name)
                   if c["type"] in ("float64", "int64")]
        if len(numeric) < 2:
            raise SchemaError(
                f"table {table_name!r} has fewer than two numeric columns; "
                "pass x/y explicitly"
            )
        return x or numeric[0], y or numeric[1]

    # -- builds ------------------------------------------------------------
    def build_sample(self, table_name: str, k: int,
                     x: str | None = None, y: str | None = None,
                     method: str = "vas", seed: int = 0,
                     engine: str = "batched", workers: int = 1,
                     pilot: str = "auto",
                     pilot_size: int | None = None) -> BuildOutcome:
        """Build-or-reuse one flat sample.

        The cache key covers everything that determines the *output*:
        data content hash, columns, method, k, seed, the shard count
        (``workers > 1`` changes the sample) and — for sharded builds
        only — the pilot configuration (a warm-started sample differs
        from a cold one).  The engine does **not** enter the key — all
        engines are bit-identical (the parity suite enforces it), so a
        sample built with one engine is a valid cache hit for any
        other; likewise ``pilot`` stays out of the key for in-process
        builds, which never pilot.  The engine that actually ran is
        recorded in the manifest for provenance.
        """
        self._check_writable("build")
        with self._mutating():
            x, y = self._resolve_xy(table_name, x, y)
            params = {"x": x, "y": y, "method": method, "k": int(k),
                      "seed": int(seed),
                      "shards": int(workers) if workers > 1 else 1}
            if workers > 1:
                params["pilot"] = str(pilot)
                if pilot_size is not None:
                    params["pilot_size"] = int(pilot_size)
            key = self.workspace.build_key("sample", table_name, params)
            manifest = self.workspace.cached_manifest(key)
            if manifest is not None:
                return BuildOutcome(
                    key=key, kind="sample", cached=True, manifest=manifest,
                    result=self.workspace.load_sample_build(key),
                )
            # Cache miss: only now is the table actually decoded.
            xy = self.workspace.table(table_name).xy(x, y)
            result = build_method_sample(
                method, xy, int(k), seed=int(seed),
                epsilon=epsilon_from_diameter(xy, rng=int(seed)),
                engine=engine, workers=int(workers),
                pilot=pilot, pilot_size=pilot_size,
            )
            # The kernel identity rides along in build.json so the
            # maintenance path can reconstruct the exact κ̃ without
            # decoding the payload (None for non-VAS methods, which
            # are not maintainable anyway).
            eps = result.metadata.get("epsilon")
            manifest = self.workspace.store_sample_build(
                key, table_name, params, result,
                extra={"built_with_engine": engine,
                       "built_with_workers": int(workers),
                       "epsilon": float(eps) if eps is not None else None,
                       "kernel": result.metadata.get("kernel")},
            )
            # Any assembled store for this column pair is now stale.
            with self._cache_lock:
                self._stores.drop((table_name, x, y,
                                   manifest["content_hash"]))
            return BuildOutcome(key=key, kind="sample", cached=False,
                                manifest=manifest, result=result)

    def build_ladder(self, table_name: str,
                     x: str | None = None, y: str | None = None,
                     levels: int = DEFAULT_LEVELS,
                     k_per_tile: int = DEFAULT_K_PER_TILE,
                     seed: int = 0) -> BuildOutcome:
        """Build-or-reuse one multi-resolution zoom ladder."""
        self._check_writable("build")
        with self._mutating():
            x, y = self._resolve_xy(table_name, x, y)
            params = {"x": x, "y": y, "levels": int(levels),
                      "k_per_tile": int(k_per_tile), "seed": int(seed)}
            key = self.workspace.build_key("ladder", table_name, params)
            manifest = self.workspace.cached_manifest(key)
            if manifest is not None:
                ladder = self._lru_get(self._ladders, key)
                if ladder is None:
                    ladder = self.workspace.load_ladder_build(key)
                    self._lru_put(self._ladders, key, ladder)
                return BuildOutcome(key=key, kind="ladder", cached=True,
                                    manifest=manifest, ladder=ladder)
            # Cache miss: only now is the table actually decoded.
            ladder = build_zoom_ladder(
                self.workspace.table(table_name).xy(x, y),
                levels=int(levels),
                k_per_tile=int(k_per_tile), rng=int(seed),
            )
            manifest = self.workspace.store_ladder_build(
                key, table_name, params,
                ladder, extra={"stats": ladder.stats()},
            )
            with self._cache_lock:
                self._ladders.put(key, ladder)
                # This build is now the newest ladder for the pair.
                self._ladder_keys.put(
                    (table_name, x, y, manifest["content_hash"]), key)
            return BuildOutcome(key=key, kind="ladder", cached=False,
                                manifest=manifest, ladder=ladder)

    # -- appends + maintenance ---------------------------------------------
    def _normalize_rows(self, table_name: str, rows) -> dict:
        """``{column: array}`` from either a mapping or positional rows.

        Positional input (the HTTP body's ``"rows": [[...], ...]``) is
        matched against the table's column order; a mapping is passed
        through by name.
        """
        columns = [c["name"]
                   for c in self.workspace.table_columns(table_name)]
        if isinstance(rows, Mapping):
            return {str(name): np.asarray(values)
                    for name, values in rows.items()}
        try:
            data = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"append rows are not numeric: {exc}") from exc
        if data.size == 0:
            return {name: np.empty(0, dtype=np.float64)
                    for name in columns}
        if data.ndim == 1:
            data = data[None, :]
        if data.ndim != 2 or data.shape[1] != len(columns):
            raise SchemaError(
                f"append rows must be (n, {len(columns)}) matching "
                f"columns {columns}, got shape {tuple(data.shape)}"
            )
        return {name: data[:, pos] for pos, name in enumerate(columns)}

    def append_rows(self, table_name: str, rows) -> dict:
        """Append rows to a live table, then maintain its artifacts.

        The mutation path, end to end: the workspace writes one delta
        segment and advances the table version, then every servable
        artifact is brought forward under the :class:`MaintenancePolicy`
        — VAS samples through :class:`SampleMaintainer` on exactly the
        delta rows, ladders through
        :func:`~repro.storage.zoom.patch_zoom_ladder` — each advanced
        artifact persisted as a new lineage entry beside its parent.
        No Interchange build ever runs here; artifacts the policy (or
        their method) cannot advance keep serving at their recorded
        version, with the staleness reported in the returned payload.
        """
        self._check_writable("append")
        with self._mutating():
            arrays = self._normalize_rows(table_name, rows)
            info = self.workspace.append_rows(table_name, arrays)
            if info["appended_rows"] > 0:
                info["maintenance"] = self._maintain_artifacts(table_name)
                # Reader caches assembled at the new content hash in
                # the window between the version flip and maintenance
                # completion would pin pre-maintenance artifacts.
                self._invalidate_reader_caches(table_name,
                                               info["content_hash"])
                # Segment pressure builds one delta per append; the
                # CompactionPolicy decides when to pay the fold (same
                # shape as the MaintenancePolicy gate above).
                if self.compaction.should_compact(
                        self.workspace.storage_stats(table_name),
                        self._compact_baseline.get(table_name)):
                    info["compaction"] = self._compact_locked(table_name)
            else:
                info["maintenance"] = []
            info["staleness"] = self._staleness(table_name)
            return info

    def append_csv(self, path, table_name: str) -> dict:
        """``repro append``: feed a CSV of new rows into a live table.

        The same CSV contract as ingest (header row, numeric columns).
        A header naming exactly the table's columns is matched by name;
        otherwise the columns are matched positionally.
        """
        names, data = self._read_csv(Path(path), strict_header=False)
        columns = [c["name"]
                   for c in self.workspace.table_columns(table_name)]
        if set(names) == set(columns):
            arrays = {name: data[:, pos]
                      for pos, name in enumerate(names)}
        elif data.shape[1] == len(columns):
            arrays = {name: data[:, pos]
                      for pos, name in enumerate(columns)}
        else:
            raise SchemaError(
                f"{path}: {data.shape[1]} CSV columns cannot fill table "
                f"{table_name!r} columns {columns}"
            )
        return self.append_rows(table_name, arrays)

    def _sample_maintainable(self, manifest: dict) -> bool:
        """Can this sample artifact be advanced without a rebuild?

        Needs a VAS-family method plus the recorded kernel identity
        (bandwidth) — without the exact κ̃ the delta replay would not
        be the same optimisation process the sample came from.
        """
        return (manifest["params"].get("method") in MAINTAINABLE_METHODS
                and manifest.get("epsilon") is not None)

    def _policy_verdict(self, kind: str, manifest: dict) -> str:
        """The one policy decision both the append path and the
        staleness report apply: ``fresh`` / ``deferred`` /
        ``needs_rebuild`` / ``maintain``.  Shared so POST /append and
        GET /tables can never disagree about the same artifact."""
        lag = manifest["_stale_rows"]
        if lag <= 0:
            return "fresh"
        # Unmaintainable artifacts are flagged from the first stale
        # row — "deferred" would promise a catch-up that can't happen.
        if kind == "sample" and not self._sample_maintainable(manifest):
            return "needs_rebuild"
        if lag < self.policy.maintain_after_rows:
            return "deferred"
        if (self.policy.rebuild_after_rows is not None
                and lag > self.policy.rebuild_after_rows):
            return "needs_rebuild"
        return "maintain"

    def _maintain_artifacts(self, table_name: str) -> list[dict]:
        """Advance every stale artifact the policy allows; report all."""
        report = []
        snapshot = self.workspace.builds(table=table_name)
        for kind in ("sample", "ladder"):
            for manifest in self._servable_builds(kind, table_name,
                                                  builds=snapshot):
                verdict = self._policy_verdict(kind, manifest)
                if verdict == "fresh":
                    continue
                entry = {"kind": kind, "key": manifest["key"],
                         "stale_rows": manifest["_stale_rows"]}
                if verdict != "maintain":
                    entry["action"] = verdict
                else:
                    advance = (self._maintain_sample if kind == "sample"
                               else self._maintain_ladder)
                    try:
                        entry.update(advance(table_name, manifest))
                        entry["action"] = "maintained"
                    except Exception as exc:  # noqa: BLE001 - reported
                        # The rows are already durably appended; one
                        # unreadable cache entry must neither fail the
                        # append (a retrying client would duplicate the
                        # rows) nor block the other artifacts.  The
                        # artifact stays at its version, i.e. stale.
                        entry["action"] = "failed"
                        entry["error"] = str(exc)
                report.append(entry)
        return report

    def _lineage_extra(self, manifest: dict, delta_rows: int) -> dict:
        root = (manifest.get("lineage") or {}).get("root", manifest["key"])
        return {
            "lineage": {"root": root, "parent": manifest["key"]},
            "maintained": True,
            "delta_rows": int(delta_rows),
        }

    def _maintain_sample(self, table_name: str, manifest: dict) -> dict:
        """One sample maintenance step: delta rows through Expand/Shrink.

        Bit-identical to running :class:`SampleMaintainer` directly on
        the same base sample and delta stream — there is no other
        machinery in between, and the result round-trips losslessly
        through the columnar store.
        """
        params = manifest["params"]
        x, y = params["x"], params["y"]
        base = self.workspace.load_sample_build(manifest["key"])
        kernel = make_kernel(manifest.get("kernel") or "gaussian",
                             float(manifest["epsilon"]))
        start = int(manifest["_rows"])
        delta = self.workspace.delta_xy(table_name, x, y, start)
        maintainer = SampleMaintainer(base, kernel, next_source_id=start)
        accepted = maintainer.append(delta)
        advanced = maintainer.sample
        # Carry the kernel identity forward so the next append can
        # keep maintaining the maintained sample.
        advanced.metadata["epsilon"] = float(manifest["epsilon"])
        advanced.metadata["kernel"] = kernel.name
        new_key = self.workspace.lineage_key(manifest["key"], table_name)
        extra = self._lineage_extra(manifest, len(delta))
        extra["accepted"] = int(accepted)
        extra["epsilon"] = float(manifest["epsilon"])
        extra["kernel"] = kernel.name
        self.workspace.store_sample_build(new_key, table_name, params,
                                          advanced, extra=extra)
        self._prune_superseded(manifest)
        return {"new_key": new_key, "delta_rows": len(delta),
                "accepted": int(accepted)}

    def _maintain_ladder(self, table_name: str, manifest: dict) -> dict:
        """One ladder maintenance step: patch each rung's open tiles."""
        params = manifest["params"]
        x, y = params["x"], params["y"]
        ladder = self._decoded_ladder(manifest["key"])
        start = int(manifest["_rows"])
        delta = self.workspace.delta_xy(table_name, x, y, start)
        indices = np.arange(start, start + len(delta), dtype=np.int64)
        patched, patch_stats = patch_zoom_ladder(ladder, delta, indices)
        new_key = self.workspace.lineage_key(manifest["key"], table_name)
        extra = self._lineage_extra(manifest, len(delta))
        extra["stats"] = patched.stats()
        extra["patch"] = patch_stats
        # Out-of-root rows accumulate down the lineage: the ladder's
        # root viewport cannot grow online, so any such row keeps the
        # needs_rebuild flag raised until an offline rebuild re-fits it.
        extra["out_of_root"] = (int(manifest.get("out_of_root", 0))
                                + patch_stats["out_of_root"])
        # So do rows the finest rung had no tile budget for: they are
        # invisible at full zoom until VAS re-samples those tiles
        # offline.  Once the accumulated count crosses the policy's
        # staleness bound the ladder is flagged (see _staleness).
        extra["unrepresented"] = (int(manifest.get("unrepresented", 0))
                                  + patch_stats["levels"][-1]["skipped"])
        self.workspace.store_ladder_build(new_key, table_name, params,
                                          patched, extra=extra)
        # Content-addressed by build key, so this entry can never go
        # stale; the (table, x, y, hash) memo re-resolves lazily.
        self._lru_put(self._ladders, new_key, patched)
        self._prune_superseded(manifest)
        return {"new_key": new_key, "delta_rows": len(delta),
                "applied": patch_stats["applied"],
                "skipped": patch_stats["skipped"]}

    def _prune_superseded(self, manifest: dict) -> None:
        """Drop the maintenance hop superseded one append *ago*.

        Without pruning, a stream of appends under the default policy
        would persist one full artifact copy per append forever.  The
        prune is deferred by one hop on purpose: ``manifest`` (the
        entry this append just superseded) survives until the *next*
        append, so a lock-free reader whose manifest scan raced this
        append can still load it — only its predecessor, superseded a
        full append cycle earlier, is removed.  Lineage *roots* (the
        offline builds) are never touched.  Steady state keeps the
        root plus the last two hops per lineage: still O(1) disk for
        the append stream.
        """
        lineage = manifest.get("lineage") or {}
        previous = lineage.get("parent")
        if not manifest.get("maintained") or not previous:
            return
        if previous == lineage.get("root"):
            return
        self.workspace.drop_build(previous)
        with self._cache_lock:
            self._ladders.drop(previous)

    # -- compaction --------------------------------------------------------
    def compact_table(self, table_name: str) -> dict:
        """Compact one live table's storage and garbage-collect its
        cache — the ``repro compact`` / ``POST /compact`` entry point.

        Runs under the mutation lock (and bumps the mutation epoch),
        so readers racing the compaction either resolve pre-compaction
        state or re-resolve post-compaction state — their memo/store
        publishes are suppressed mid-flight, and the retry loops on
        the decode paths absorb any entry that was collected under
        them.  Content hashes never change, so every surviving
        artifact keeps serving under its existing key.
        """
        self._check_writable("compact")
        with self._mutating():
            if not self.workspace.has_table(table_name):
                from ..errors import TableNotFoundError

                raise TableNotFoundError(table_name)
            return self._compact_locked(table_name)

    def compact_all(self) -> list[dict]:
        """Compact every table in the workspace; one report per table."""
        return [self.compact_table(name)
                for name in self.workspace.table_names]

    def _compact_locked(self, table_name: str) -> dict:
        """One compaction, mutation lock already held.

        Order matters: first the cache is garbage-collected (orphaned
        entries from replaced data, maintenance hops a newer hop
        superseded), *then* the surviving entries' content hashes pin
        the version boundaries storage compaction must keep — so an
        artifact can always re-open the exact version it was built
        against, and nothing pins a version on behalf of an entry that
        no longer exists.
        """
        dropped = self._gc_builds(table_name)
        keep = {m.get("content_hash")
                for m in self.workspace.builds(table=table_name)}
        report = self.workspace.compact_table(table_name,
                                              keep_hashes=keep)
        report["table"] = table_name
        report["cache_entries_dropped"] = len(dropped)
        # What this compaction could not fold (pinned boundaries) is
        # the new floor the policy measures growth against.
        self._compact_baseline[table_name] = \
            self.workspace.storage_stats(table_name)
        with self._cache_lock:
            for key in dropped:
                self._ladders.drop(key)
            # Memoized stores / ladder-key memos for this table may
            # point at dropped entries; they re-resolve on next read.
            for lru in (self._stores, self._ladder_keys):
                stale = [key for key in lru._items
                         if key[0] == table_name]
                for key in stale:
                    lru.drop(key)
        return report

    def _gc_builds(self, table_name: str) -> list[str]:
        """Drop cache entries compaction makes unreachable.

        Two classes go: **orphans** — entries whose recorded content
        hash is not in the table's version history (a ``--replace``
        re-ingest reset it), which can never serve again — and
        **superseded maintenance hops** — lineage entries that are
        neither a root (offline builds are expensive; they are never
        collected) nor the newest entry of their params group.  This
        is the complete version of the one-hop-behind pruning the
        append path does incrementally.
        """
        by_hash = self.workspace.version_by_hash(table_name)
        groups: dict[str, list[dict]] = {}
        dropped = []
        for manifest in self.workspace.builds(table=table_name):
            if manifest.get("content_hash") not in by_hash:
                dropped.append(manifest["key"])
                continue
            identity = json.dumps(
                {"kind": manifest.get("kind"),
                 "params": manifest.get("params", {})},
                sort_keys=True)
            groups.setdefault(identity, []).append(manifest)
        for manifests in groups.values():
            manifests.sort(key=lambda m: (
                by_hash[m["content_hash"]]["version"],
                m.get("created_unix", 0.0)))
            newest = manifests[-1]["key"]
            for manifest in manifests[:-1]:
                root = (manifest.get("lineage") or {}).get("root")
                is_hop = (manifest.get("maintained")
                          and manifest["key"] != root)
                if is_hop and manifest["key"] != newest:
                    dropped.append(manifest["key"])
        for key in dropped:
            self.workspace.drop_build(key)
        return dropped

    def _invalidate_reader_caches(self, table_name: str,
                                  content_hash: str) -> None:
        """Drop store/memo entries readers may have assembled at the
        new content hash before maintenance finished publishing."""
        with self._cache_lock:
            for lru in (self._stores, self._ladder_keys):
                stale = [key for key in lru._items
                         if key[0] == table_name and key[3] == content_hash]
                for key in stale:
                    lru.drop(key)

    def _staleness(self, table_name: str,
                   builds: list[dict] | None = None) -> dict:
        """The ``GET /tables`` staleness block for one table."""
        artifacts = []
        snapshot = (builds if builds is not None
                    else self.workspace.builds(table=table_name))
        for kind in ("sample", "ladder"):
            for manifest in self._servable_builds(kind, table_name,
                                                  builds=snapshot):
                lag = manifest["_stale_rows"]
                needs_rebuild = (
                    self._policy_verdict(kind, manifest) == "needs_rebuild")
                # A patched ladder that swallowed out-of-root rows can
                # serve its old extent but not the new one: flag it
                # even though its version is current.  Likewise one
                # whose full tiles have dropped more appended rows
                # than the staleness bound tolerates — those rows are
                # unrepresented at full zoom until an offline rebuild
                # re-samples the dense tiles.
                if kind == "ladder" and manifest.get("out_of_root", 0) > 0:
                    needs_rebuild = True
                if (kind == "ladder"
                        and self.policy.rebuild_after_rows is not None
                        and manifest.get("unrepresented", 0)
                        > self.policy.rebuild_after_rows):
                    needs_rebuild = True
                artifacts.append({
                    "key": manifest["key"], "kind": kind,
                    "table_version": manifest["_version"],
                    # The artifact's own pinned hash + params: exactly
                    # what a tile client needs to assemble immutable
                    # /v1/tile URLs from one GET /v1/tables.
                    "content_hash": manifest["content_hash"],
                    "params": manifest["params"],
                    "stale_rows": lag,
                    "needs_rebuild": bool(needs_rebuild),
                })
        return {
            "artifacts": len(artifacts),
            "stale": sum(1 for a in artifacts if a["stale_rows"] > 0),
            "needs_rebuild": sum(1 for a in artifacts
                                 if a["needs_rebuild"]),
            "max_stale_rows": max((a["stale_rows"] for a in artifacts),
                                  default=0),
            "detail": artifacts,
        }

    # -- query answering ---------------------------------------------------
    def _servable_builds(self, kind: str, table_name: str,
                         x: str | None = None,
                         y: str | None = None,
                         builds: list[dict] | None = None) -> list[dict]:
        """The newest servable artifact of every lineage, oldest first.

        An artifact is servable when its recorded content hash appears
        in the table's *version history*: builds (and maintenance
        entries) from any version of the live table keep answering —
        with a known staleness — while artifacts from replaced data
        (whose hashes left the history on re-ingest) stay hidden.
        Within one lineage only the entry at the highest table version
        survives, so a maintained sample supersedes the base build it
        descends from without ever deleting it.

        Artifacts are grouped by their *logical identity* — the build
        params — not by lineage root: a maintained sample supersedes
        the base build it descends from, and an offline rebuild at the
        current version supersedes a stale lineage outright (same
        params, higher version).  Nothing is ever deleted; superseded
        entries just stop answering.

        Each returned manifest is annotated with ``_version`` /
        ``_rows`` (the table version it corresponds to and that
        version's row count) and ``_stale_rows`` (how far it lags the
        table now).

        ``builds`` lets callers that resolve several kinds against the
        same table (the append path, the staleness report) reuse one
        cache-directory scan instead of paying one per kind.
        """
        by_hash = self.workspace.version_by_hash(table_name)
        current_rows = int(
            self.workspace.version_history(table_name)[-1]["rows"])
        best: dict[str, dict] = {}
        if builds is None:
            builds = self.workspace.builds(kind=kind, table=table_name)
        for manifest in builds:
            if manifest.get("kind") != kind:
                continue
            if x is not None and manifest["params"].get("x") != x:
                continue
            if y is not None and manifest["params"].get("y") != y:
                continue
            at = by_hash.get(manifest.get("content_hash"))
            if at is None:
                continue
            entry = dict(manifest)
            entry["_version"] = at["version"]
            entry["_rows"] = at["rows"]
            entry["_stale_rows"] = current_rows - at["rows"]
            identity = json.dumps(entry["params"], sort_keys=True)
            rank = (entry["_version"], entry.get("created_unix", 0.0))
            held = best.get(identity)
            if held is None or rank > (held["_version"],
                                       held.get("created_unix", 0.0)):
                best[identity] = entry
        return sorted(
            best.values(),
            key=lambda m: (m["_version"], m.get("created_unix", 0.0)),
        )

    def _decoded_ladder(self, key: str) -> ZoomLadder:
        """The decoded ladder for a build key (LRU, decode outside any
        lock — two racing readers may decode twice, never block)."""
        ladder = self._lru_get(self._ladders, key)
        if ladder is None:
            ladder = self.workspace.load_ladder_build(key)
            self._lru_put(self._ladders, key, ladder)
        return ladder

    def _ladder_for_resolved(self, table_name: str, x: str,
                             y: str) -> ZoomLadder:
        """:meth:`ladder_for` with the column pair already resolved."""
        attempts = self._read_attempts()
        for attempt in range(attempts):
            memo_key = (table_name, x, y,
                        self.workspace.table_hash(table_name))
            token = self._read_token()
            key = self._lru_get(self._ladder_keys, memo_key)
            if key is None:
                candidates = self._servable_builds("ladder", table_name,
                                                   x, y)
                if not candidates:
                    # A follower's stale history can briefly gate out
                    # every on-disk build mid-prune; re-sync and look
                    # again before declaring nothing built.
                    if self.workspace.read_only and attempt < attempts - 1:
                        self.workspace.reader_refresh()
                        continue
                    raise SampleNotFoundError(
                        f"no zoom ladder built for {table_name}.({x}, "
                        f"{y}) at its current contents; run repro "
                        "zoom-build / POST /build first"
                    )
                key = candidates[-1]["key"]  # highest version, newest
                if self._publishable(token):
                    self._lru_put(self._ladder_keys, memo_key, key)
            try:
                return self._decoded_ladder(key)
            except (ReproError, OSError):
                # A concurrent append pruned the entry this (stale)
                # memo pointed at; forget it and re-resolve.
                if attempt == attempts - 1:
                    raise
                with self._cache_lock:
                    self._ladder_keys.drop(memo_key)
                self.workspace.reader_refresh()
        raise AssertionError("unreachable")  # pragma: no cover

    def ladder_for(self, table_name: str, x: str | None = None,
                   y: str | None = None) -> ZoomLadder:
        """The newest cached ladder for a column pair (LRU-decoded).

        Pure lookup: a ladder is *never* built here.  Interactive
        queries must not absorb a multi-second Interchange run — the
        caller gets :class:`SampleNotFoundError` and decides whether to
        pay for a ``/build``.
        """
        x, y = self._resolve_xy(table_name, x, y)
        return self._ladder_for_resolved(table_name, x, y)

    def _ladder_at_hash(self, table_name: str, x: str, y: str,
                        version_hash: str) -> ZoomLadder:
        """The newest cached ladder pinned to one content hash.

        Resolution is over the build manifests alone — *not* gated on
        the version history — so a ladder whose version was folded
        away by compaction keeps serving as long as the artifact
        itself survives: its hash is pinned in the build manifest, and
        compaction never collects the newest entry of a lineage.  That
        is the immutable-tile contract: a ``/v1/tile/<hash>/...`` URL
        a client cached yesterday answers identically today.
        """
        if not self.workspace.has_table(table_name):
            from ..errors import TableNotFoundError

            raise TableNotFoundError(table_name)
        # A fifth component keeps this memo disjoint from the
        # current-hash memo in _ladder_for_resolved; positions 0 and 3
        # (table, hash) still line up with the invalidation sweeps.
        memo_key = (table_name, x, y, version_hash, "pinned")
        attempts = self._read_attempts()
        for attempt in range(attempts):
            token = self._read_token()
            key = self._lru_get(self._ladder_keys, memo_key)
            if key is None:
                matches = [
                    m for m in self.workspace.builds(kind="ladder",
                                                     table=table_name)
                    if m.get("kind") == "ladder"
                    and m.get("content_hash") == version_hash
                    and m["params"].get("x") == x
                    and m["params"].get("y") == y
                ]
                if not matches:
                    if self.workspace.read_only and attempt < attempts - 1:
                        self.workspace.reader_refresh()
                        continue
                    raise SampleNotFoundError(
                        f"no zoom ladder for {table_name}.({x}, {y}) at "
                        f"version hash {version_hash[:12]}; run repro "
                        "zoom-build / POST /v1/build first"
                    )
                matches.sort(key=lambda m: m.get("created_unix", 0.0))
                key = matches[-1]["key"]
                if self._publishable(token):
                    self._lru_put(self._ladder_keys, memo_key, key)
            try:
                return self._decoded_ladder(key)
            except (ReproError, OSError):
                # A concurrent append pruned the entry this (stale)
                # memo pointed at; forget it and re-resolve.
                if attempt == attempts - 1:
                    raise
                with self._cache_lock:
                    self._ladder_keys.drop(memo_key)
                self.workspace.reader_refresh()
        raise AssertionError("unreachable")  # pragma: no cover

    def tile_query(self, table_name: str, level: int, tile_x: int,
                   tile_y: int, version_hash: str | None = None,
                   x: str | None = None,
                   y: str | None = None) -> tuple[TileData, str]:
        """One ladder tile for ``GET /v1/tile`` and ``repro tile``.

        ``version_hash`` pins the artifact (the immutable-URL path);
        ``None`` resolves the newest servable ladder and reports the
        hash it serves at — how a client bootstraps before it has seen
        ``/v1/tables``.  Read-only like :meth:`viewport`: no mutation
        lock, and never a build.  Returns ``(tile, version_hash)``.
        """
        x, y = self._resolve_xy(table_name, x, y)
        if version_hash is not None:
            ladder = self._ladder_at_hash(table_name, x, y, version_hash)
            return (extract_tile(ladder, int(level), int(tile_x),
                                 int(tile_y)),
                    version_hash)
        # Unpinned: resolve the newest servable hash, then pin to it.
        # The resolved hash itself can go stale under a racing leader
        # (its hop pruned once two successors land), so a failed pin
        # re-resolves from scratch instead of retrying a dead hash.
        attempts = self._read_attempts()
        for attempt in range(attempts):
            candidates = self._servable_builds("ladder", table_name, x, y)
            if not candidates:
                if self.workspace.read_only and attempt < attempts - 1:
                    self.workspace.reader_refresh()
                    continue
                raise SampleNotFoundError(
                    f"no zoom ladder built for {table_name}.({x}, {y}); "
                    "run repro zoom-build / POST /v1/build first"
                )
            resolved = candidates[-1]["content_hash"]
            try:
                ladder = self._ladder_at_hash(table_name, x, y, resolved)
            except (ReproError, OSError):
                if attempt == attempts - 1:
                    raise
                self.workspace.reader_refresh()
                continue
            return (extract_tile(ladder, int(level), int(tile_x),
                                 int(tile_y)),
                    resolved)
        raise AssertionError("unreachable")  # pragma: no cover

    def viewport(self, table_name: str, bbox: tuple[float, float, float, float],
                 x: str | None = None, y: str | None = None,
                 zoom: int | None = None,
                 max_points: int | None = None,
                 predicate=None) -> VizResult:
        """Answer one viewport request from a cached ladder.

        Read-only: takes no mutation lock, so viewport answers overlap
        freely with each other and with appends.  ``predicate`` — a
        :class:`~repro.storage.predicates.Predicate` or a wire-syntax
        spec accepted by
        :func:`~repro.storage.predicates.parse_predicate` — is pushed
        down into the ladder's tile walk; it may only reference the
        plotted columns (the ladder stores nothing else).
        """
        x, y = self._resolve_xy(table_name, x, y)
        if predicate is not None and not isinstance(predicate, Predicate):
            predicate = parse_predicate(predicate)
        ladder = self._ladder_for_resolved(table_name, x, y)
        query = ZoomQuery(
            table=table_name, x_column=x, y_column=y,
            viewport=Viewport(*map(float, bbox)),
            zoom=zoom, max_points=max_points, predicate=predicate,
        )
        return answer_zoom_query(ladder, query)

    def _store_for(self, table_name: str, x: str, y: str) -> SampleStore:
        """A :class:`SampleStore` assembled from cached sample builds.

        Keyed by content hash too, so a re-ingest naturally starts a
        fresh store instead of serving the old data's rungs.
        """
        cache_key = (table_name, x, y,
                     self.workspace.table_hash(table_name))
        cached = self._lru_get(self._stores, cache_key)
        if cached is not None:
            return cached
        for attempt in range(self._read_attempts()):
            token = self._read_token()
            store = SampleStore()
            complete = True
            for manifest in self._servable_builds("sample", table_name,
                                                  x, y):
                try:
                    result = self.workspace.load_sample_build(
                        manifest["key"])
                except (ReproError, OSError):
                    # A concurrent append pruned this entry between the
                    # manifest scan and the payload read.  Its successor
                    # was durably written *before* the prune, so one
                    # fresh scan must see it — retry (re-syncing a
                    # follower's view first), and never cache an
                    # assembly that lost a rung.
                    complete = False
                    self.workspace.reader_refresh()
                    break
                store.add(table_name, x, y, result)
            if complete:
                # Publish only if no mutation overlapped the assembly:
                # a store built in the window between a version flip
                # and its maintenance pass would otherwise be pinned
                # under the new hash after the invalidation ran.
                if self._publishable(token):
                    self._lru_put(self._stores, cache_key, store)
                return store
        return store  # both scans raced appends; serve best effort

    def sample_query(self, table_name: str,
                     x: str | None = None, y: str | None = None,
                     method: str = "vas",
                     max_points: int | None = None,
                     time_budget_seconds: float | None = None,
                     seconds_per_point: float = 1e-6,
                     fixed_overhead_seconds: float = 0.0,
                     bbox: tuple[float, float, float, float] | None = None,
                     ) -> VizResult:
        """Serve a budgeted sample request from the cached flat rungs.

        The §II-D selection rule against the workspace: an explicit
        ``max_points`` wins, else a time budget converts to points,
        else the largest cached sample is returned.  ``bbox`` applies a
        viewport filter after selection (the Fig 1 pattern).

        Read-only, like :meth:`viewport`: no mutation lock taken.
        """
        x, y = self._resolve_xy(table_name, x, y)
        store = self._store_for(table_name, x, y)
        if max_points is not None:
            sample = store.for_point_budget(table_name, x, y, method,
                                            max_points)
        elif time_budget_seconds is not None:
            sample = store.for_time_budget(
                table_name, x, y, method, time_budget_seconds,
                seconds_per_point, fixed_overhead_seconds,
            )
        else:
            sample = store.for_point_budget(table_name, x, y, method,
                                            2**62)
        points, weights = sample.points, sample.weights
        if bbox is not None:
            mask = Viewport(*map(float, bbox)).contains(points)
            points = points[mask]
            weights = weights[mask] if weights is not None else None
        return VizResult(
            points=points, weights=weights, method=sample.method,
            sample_size=len(sample), returned_rows=len(points),
        )

    # -- SPLOM -------------------------------------------------------------
    def _splom_columns(self, table_name: str, cols) -> list[str]:
        """Validated column list for a SPLOM request.

        ``cols`` is a list of names or a comma-separated string;
        ``None`` selects every numeric column of the table.  At least
        two distinct numeric columns are required.
        """
        numeric = [c["name"]
                   for c in self.workspace.table_columns(table_name)
                   if c["type"] in ("float64", "int64")]
        if cols is None:
            names = list(numeric)
        elif isinstance(cols, str):
            names = [part.strip() for part in cols.split(",")
                     if part.strip()]
        else:
            names = [str(c) for c in cols]
        unknown = [c for c in names if c not in numeric]
        if unknown:
            raise SchemaError(
                f"SPLOM columns {unknown} are not numeric columns of "
                f"table {table_name!r}; available: {numeric}"
            )
        if len(set(names)) != len(names):
            raise SchemaError(
                f"SPLOM columns must be distinct, got {names}"
            )
        if len(names) < 2:
            raise SchemaError(
                f"a SPLOM needs at least two columns, got {names}"
            )
        return names

    def build_splom(self, table_name: str, k: int, cols=None,
                    method: str = "vas", seed: int = 0,
                    engine: str = "batched", workers: int = 1,
                    pilot: str = "auto",
                    pilot_size: int | None = None) -> dict:
        """Build-or-reuse the per-pair samples behind a SPLOM.

        One flat sample per unordered column pair, each cached under
        its own content-hash key exactly as :meth:`build_sample` would
        — a SPLOM over ``(a, b, c)`` and a later scatter over
        ``(a, b)`` share the same cache entry, and re-running the
        SPLOM build is all hits.
        """
        self._check_writable("build")
        names = self._splom_columns(table_name, cols)
        pairs = []
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                outcome = self.build_sample(
                    table_name, k, x=names[i], y=names[j],
                    method=method, seed=seed, engine=engine,
                    workers=workers, pilot=pilot, pilot_size=pilot_size,
                )
                pairs.append({
                    "x": names[i], "y": names[j], "key": outcome.key,
                    "cached": outcome.cached,
                    "size": len(outcome.result),
                })
        return {"table": table_name, "columns": names, "kind": "splom",
                "pairs": pairs}

    def splom_query(self, table_name: str, cols=None,
                    method: str = "vas",
                    max_points: int | None = None) -> dict:
        """Serve a scatter-plot matrix from cached per-pair samples.

        Pure read, like :meth:`viewport`: each unordered pair resolves
        through :meth:`sample_query`, and a pair without a cached
        sample raises :class:`~repro.errors.SampleNotFoundError` — a
        half-built SPLOM answers 404, it never silently thins panels
        and never triggers a build.
        """
        names = self._splom_columns(table_name, cols)
        panels = []
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                result = self.sample_query(
                    table_name, x=names[i], y=names[j], method=method,
                    max_points=max_points,
                )
                panels.append({"x": names[i], "y": names[j],
                               "result": result})
        return {"table": table_name, "columns": names, "panels": panels}

    # -- task quality ------------------------------------------------------
    TASKS = ("regression", "density", "clustering")

    def task_quality(self, table_name: str, task: str,
                     x: str | None = None, y: str | None = None,
                     method: str = "vas",
                     n_observers: int = 8, n_questions: int = 4,
                     seed: int = 0) -> dict:
        """Score the *served* sample on one §V task against full data.

        The maintained-sample quality report: the largest cached
        sample of ``method`` (exactly what an unbudgeted
        :meth:`sample_query` serves, including any maintenance hops it
        has accumulated) is scored by a simulated observer panel on
        one of the paper's three tasks, and the same panel — rebuilt
        from the same seed, since scoring consumes observer RNG state
        — scores the full table as the reference.  ``loss`` is
        ``reference_score - sample_score``.

        Questions derive deterministically from the full data and
        ``seed``, so two calls with equal parameters agree exactly.
        Read-only: no builder runs and no mutation lock is taken — an
        unbuilt sample is a 404, not an Interchange run.
        """
        if task not in self.TASKS:
            raise SchemaError(
                f"unknown task {task!r}; expected one of {list(self.TASKS)}"
            )
        n_observers = int(n_observers)
        n_questions = int(n_questions)
        if n_observers < 1 or n_questions < 1:
            raise SchemaError(
                f"n_observers and n_questions must be >= 1, got "
                f"{n_observers} and {n_questions}"
            )
        x, y = self._resolve_xy(table_name, x, y)
        store = self._store_for(table_name, x, y)
        sample = store.for_point_budget(table_name, x, y, method, 2**62)
        full_xy = self.workspace.table(table_name).xy(x, y)

        def panel() -> list[Observer]:
            # Observers are stateful (answering consumes their RNG):
            # sample and reference runs each get a fresh panel grown
            # from the same seed, so neither side is scored by a
            # panel the other run already perturbed.
            return [Observer(params=PerceptionParams(), rng=r)
                    for r in spawn(as_generator(int(seed) + 1),
                                   n_observers)]

        question_rng = as_generator(int(seed))
        if task == "regression":
            questions = make_regression_questions(
                full_xy, n_questions=n_questions, rng=question_rng)
            sample_score = score_regression(panel(), questions,
                                            sample.points)
            reference_score = score_regression(panel(), questions,
                                               full_xy)
        elif task == "density":
            questions = make_density_questions(
                full_xy, n_questions=n_questions, rng=question_rng)
            sample_score = score_density(panel(), questions,
                                         sample.points, sample.weights)
            reference_score = score_density(panel(), questions,
                                            full_xy, None)
        else:
            truth = max(
                count_visual_clusters(full_xy, None,
                                      Viewport.fit(full_xy)), 1)
            question = make_clustering_question(full_xy, truth)
            questions = [question]
            sample_score = score_clustering(
                panel(), [(question, sample.points, sample.weights)])
            reference_score = score_clustering(
                panel(), [(question, full_xy, None)])

        stale_rows = None
        artifact_version = None
        matches = [m for m in self._servable_builds("sample", table_name,
                                                    x, y)
                   if m["params"].get("method") == method]
        if matches:
            # The unbudgeted query serves the largest rung; report that
            # artifact's staleness, not the freshest small one's.
            serving = max(matches,
                          key=lambda m: int(m["params"].get("k", 0)))
            stale_rows = serving["_stale_rows"]
            artifact_version = serving["_version"]
        return {
            "table": table_name, "task": task, "x": x, "y": y,
            "method": sample.method,
            "sample_size": len(sample), "rows": len(full_xy),
            "n_observers": n_observers, "n_questions": len(questions),
            "seed": int(seed),
            "stale_rows": stale_rows,
            "artifact_version": artifact_version,
            "sample_score": float(sample_score),
            "reference_score": float(reference_score),
            "loss": float(reference_score) - float(sample_score),
        }

    def info(self) -> dict:
        """Workspace summary plus service-side cache occupancy."""
        payload = self.workspace.info()
        payload["decoded_ladders"] = len(self._ladders)
        payload["decoded_stores"] = len(self._stores)
        payload["policy"] = {
            "maintain_after_rows": self.policy.maintain_after_rows,
            "rebuild_after_rows": self.policy.rebuild_after_rows,
        }
        payload["compaction_policy"] = {
            "compact_after_segments": self.compaction.compact_after_segments,
            "compact_after_bytes": self.compaction.compact_after_bytes,
        }
        return payload

    def close(self) -> None:
        """Quiesce for shutdown: wait out any in-flight mutation, then
        drop the decoded caches.  Idempotent; the workspace itself has
        no buffered state (every mutation lands on disk before its
        call returns), so close is a barrier, not a flush."""
        with self._mutate_lock:
            with self._cache_lock:
                self._ladders.clear()
                self._stores.clear()
                self._ladder_keys.clear()


#: Stable machine-readable error codes and their HTTP statuses — the
#: single source of truth behind the ``{"error": {"code", "message"}}``
#: envelope every endpoint answers with.  The HTTP layer, the OpenAPI
#: document, and the tests all read this mapping; nothing else assigns
#: a status to an error.
ERROR_STATUS = {
    "bad_request": 400,
    "schema_error": 400,
    "unknown_table": 404,
    "not_built": 404,
    "unknown_endpoint": 404,
    "internal": 500,
    "read_only": 503,
}


def service_error_info(exc: Exception) -> tuple[str, int]:
    """``(stable error code, HTTP status)`` for a service-layer error."""
    from ..errors import ReadOnlyError, TableNotFoundError

    if isinstance(exc, ReadOnlyError):
        code = "read_only"
    elif isinstance(exc, TableNotFoundError):
        code = "unknown_table"
    elif isinstance(exc, SampleNotFoundError):
        code = "not_built"
    elif isinstance(exc, SchemaError):
        code = "schema_error"
    else:
        code = "bad_request"
    return code, ERROR_STATUS[code]


def service_error_status(exc: ReproError) -> int:
    """HTTP status for a service-layer error (see ``ERROR_STATUS``)."""
    return service_error_info(exc)[1]
