"""Workspaces: one directory per project, builds cached by content hash.

A :class:`Workspace` owns two things:

* **tables/** — ingested datasets, one columnar directory per table
  (written through :mod:`repro.storage.persist`);
* **cache/**  — built artifacts (flat samples, zoom ladders), one
  directory per *build key*.

The build key is ``sha256(kind + table content hash + build params)``:
the same data with the same parameters always lands on the same key,
so a second ``build`` request is a pure cache hit, and editing the
source data (which changes the content hash) transparently misses and
rebuilds.  Nothing is keyed on paths or mtimes.

A workspace constructed with ``root=None`` is **ephemeral**: the same
API backed by process memory, used by the CLI's one-shot CSV mode so
that ``repro sample data.csv`` and ``repro sample --workspace ws t``
run the exact same code path.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from pathlib import Path

from ..errors import SchemaError, StorageError, TableNotFoundError
from ..sampling.base import SampleResult
from ..storage.persist import (
    FORMAT_VERSION,
    load_sample_result,
    open_table,
    read_json,
    save_sample_result,
    save_table,
    table_content_hash,
    write_json,
)
from ..storage.table import Table
from ..storage.zoom import ZoomLadder

#: Table names double as directory names, so they are restricted to a
#: filesystem-safe alphabet.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}")


def validate_table_name(name: str) -> str:
    if not _NAME_RE.fullmatch(name or ""):
        raise SchemaError(
            f"invalid workspace table name {name!r}: use 1-64 characters "
            "from [A-Za-z0-9_.-], starting with a letter or digit"
        )
    return name


class Workspace:
    """A persistent (or ephemeral) home for tables and cached builds."""

    def __init__(self, root: str | Path | None = None,
                 create: bool = True) -> None:
        """Open (or create) the workspace at ``root``.

        ``create=False`` refuses to materialise anything: opening a
        path that is not already a workspace raises instead of quietly
        leaving an empty directory behind (the CLI uses this for every
        verb except ``ingest``, so a typo'd ``--workspace`` is an error
        rather than a fresh workspace).
        """
        self.root = Path(root) if root is not None else None
        self._tables: dict[str, Table] = {}       # decoded-table cache
        self._hashes: dict[str, str] = {}         # name -> content hash
        self._columns: dict[str, list[dict]] = {}  # name -> column meta
        self._mem_builds: dict[str, tuple[dict, object]] = {}  # ephemeral
        if self.root is not None:
            marker = self.root / "workspace.json"
            if marker.exists():
                manifest = read_json(marker)
                if manifest.get("kind") != "workspace":
                    raise StorageError(f"{self.root} is not a workspace")
                if manifest.get("format", 0) > FORMAT_VERSION:
                    raise StorageError(
                        f"workspace {self.root} uses format "
                        f"{manifest['format']}, newer than this build's "
                        f"{FORMAT_VERSION}"
                    )
            elif create:
                self.root.mkdir(parents=True, exist_ok=True)
                write_json(marker, {"format": FORMAT_VERSION,
                                    "kind": "workspace"})
            else:
                raise StorageError(
                    f"not a workspace: {self.root} "
                    "(ingest a CSV first: repro ingest data.csv "
                    f"--workspace {self.root})"
                )

    # -- plumbing ----------------------------------------------------------
    @property
    def is_ephemeral(self) -> bool:
        return self.root is None

    @property
    def _tables_dir(self) -> Path:
        assert self.root is not None
        return self.root / "tables"

    @property
    def _cache_dir(self) -> Path:
        assert self.root is not None
        return self.root / "cache"

    # -- tables ------------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        names = set(self._tables)
        if self.root is not None and self._tables_dir.is_dir():
            names.update(
                p.name for p in self._tables_dir.iterdir()
                if (p / "manifest.json").is_file()
            )
        return sorted(names)

    def has_table(self, name: str) -> bool:
        if name in self._tables:
            return True
        return (self.root is not None
                and (self._tables_dir / name / "manifest.json").is_file())

    def add_table(self, table: Table, replace: bool = False) -> str:
        """Register (and persist) a table; returns its content hash."""
        validate_table_name(table.name)
        if self.has_table(table.name) and not replace:
            raise SchemaError(
                f"table already exists in workspace: {table.name!r} "
                "(pass replace=True / --replace to overwrite)"
            )
        if self.root is not None:
            digest = save_table(table, self._tables_dir / table.name)
        else:
            digest = table_content_hash(table)
        self._tables[table.name] = table
        self._hashes[table.name] = digest
        self._columns[table.name] = [
            {"name": n, "type": table.column(n).ctype.name}
            for n in table.column_names
        ]
        return digest

    def table(self, name: str) -> Table:
        """The decoded table (loaded from disk on first access)."""
        if name in self._tables:
            return self._tables[name]
        if self.root is not None:
            table_dir = self._tables_dir / name
            if (table_dir / "manifest.json").is_file():
                table = open_table(table_dir)
                self._tables[name] = table
                return table
        raise TableNotFoundError(name)

    def table_hash(self, name: str) -> str:
        """Content hash of a table, from its manifest when possible.

        The warm path never has to decode the column arrays: the hash
        was computed at ingest time and recorded in the manifest.
        """
        if name in self._hashes:
            return self._hashes[name]
        if self.root is not None:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                digest = read_json(manifest_path)["content_hash"]
                self._hashes[name] = digest
                return digest
        if name in self._tables:
            digest = table_content_hash(self._tables[name])
            self._hashes[name] = digest
            return digest
        raise TableNotFoundError(name)

    def table_columns(self, name: str) -> list[dict]:
        """``[{"name", "type"}]`` column metadata, memoized and
        manifest-only — the warm path never decodes the column
        arrays, and re-reads nothing after the first request."""
        if name in self._columns:
            return self._columns[name]
        if self.root is not None and name not in self._tables:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                columns = [{"name": c["name"], "type": c["type"]}
                           for c in read_json(manifest_path)["columns"]]
                self._columns[name] = columns
                return columns
        table = self.table(name)
        columns = [{"name": n, "type": table.column(n).ctype.name}
                   for n in table.column_names]
        self._columns[name] = columns
        return columns

    def table_info(self, name: str) -> dict:
        """Rows/columns/hash summary (manifest-only on the warm path)."""
        if self.root is not None and name not in self._tables:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                manifest = read_json(manifest_path)
                return {
                    "name": name,
                    "rows": manifest["rows"],
                    "columns": [c["name"] for c in manifest["columns"]],
                    "content_hash": manifest["content_hash"],
                }
        table = self.table(name)
        return {
            "name": name,
            "rows": len(table),
            "columns": table.column_names,
            "content_hash": self.table_hash(name),
        }

    # -- build cache -------------------------------------------------------
    def build_key(self, kind: str, table_name: str, params: dict) -> str:
        """The content-hash cache key of one build request."""
        identity = {
            "kind": kind,
            "content_hash": self.table_hash(table_name),
            "params": params,
        }
        blob = json.dumps(identity, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def cached_manifest(self, key: str) -> dict | None:
        """The stored build manifest, or ``None`` on a cache miss.

        Build metadata lives in ``build.json``, *next to* the payload's
        own ``manifest.json`` — the cache index and the storage format
        stay independent.
        """
        if self.root is None:
            entry = self._mem_builds.get(key)
            return entry[0] if entry else None
        manifest_path = self._cache_dir / key / "build.json"
        if not manifest_path.is_file():
            return None
        return read_json(manifest_path)

    def _build_manifest(self, key: str, kind: str, table_name: str,
                        params: dict, extra: dict) -> dict:
        return {
            "format": FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "table": table_name,
            "content_hash": self.table_hash(table_name),
            "params": params,
            "created_unix": time.time(),
            **extra,
        }

    def store_sample_build(self, key: str, table_name: str, params: dict,
                           result: SampleResult,
                           extra: dict | None = None) -> dict:
        manifest = self._build_manifest(key, "sample", table_name, params,
                                        extra or {})
        if self.root is None:
            self._mem_builds[key] = (manifest, result)
        else:
            entry = self._cache_dir / key
            save_sample_result(result, entry)
            write_json(entry / "build.json", manifest)
        return manifest

    def load_sample_build(self, key: str) -> SampleResult:
        if self.root is None:
            manifest_and_payload = self._mem_builds.get(key)
            if manifest_and_payload is None:
                raise StorageError(f"no cached build {key!r}")
            return manifest_and_payload[1]  # type: ignore[return-value]
        return load_sample_result(self._cache_dir / key)

    def store_ladder_build(self, key: str, table_name: str, params: dict,
                           ladder: ZoomLadder,
                           extra: dict | None = None) -> dict:
        manifest = self._build_manifest(key, "ladder", table_name, params,
                                        extra or {})
        if self.root is None:
            self._mem_builds[key] = (manifest, ladder)
        else:
            entry = self._cache_dir / key
            entry.mkdir(parents=True, exist_ok=True)
            ladder.save(entry / "ladder.npz")
            write_json(entry / "build.json", manifest)
        return manifest

    def load_ladder_build(self, key: str) -> ZoomLadder:
        if self.root is None:
            manifest_and_payload = self._mem_builds.get(key)
            if manifest_and_payload is None:
                raise StorageError(f"no cached build {key!r}")
            return manifest_and_payload[1]  # type: ignore[return-value]
        return ZoomLadder.load(self._cache_dir / key / "ladder.npz")

    def builds(self, kind: str | None = None,
               table: str | None = None) -> list[dict]:
        """Manifests of every cached build, newest last.

        Manifests are a handful of small JSON files; scanning them is
        the directory-listing cost, not an array-decoding cost.
        """
        manifests: list[dict] = []
        if self.root is None:
            manifests = [m for m, _ in self._mem_builds.values()]
        elif self._cache_dir.is_dir():
            for entry in self._cache_dir.iterdir():
                manifest_path = entry / "build.json"
                if manifest_path.is_file():
                    manifests.append(read_json(manifest_path))
        if kind is not None:
            manifests = [m for m in manifests if m.get("kind") == kind]
        if table is not None:
            manifests = [m for m in manifests if m.get("table") == table]
        manifests.sort(key=lambda m: m.get("created_unix", 0.0))
        return manifests

    # -- summaries ---------------------------------------------------------
    def info(self) -> dict:
        """The ``repro workspace-info`` / ``GET /workspace`` payload."""
        builds = self.builds()
        return {
            "root": str(self.root) if self.root is not None else None,
            "format": FORMAT_VERSION,
            "tables": [self.table_info(n) for n in self.table_names],
            "builds": [
                {k: m.get(k) for k in ("key", "kind", "table", "params",
                                       "created_unix")}
                for m in builds
            ],
        }
