"""Workspaces: one directory per project, builds cached by content hash.

A :class:`Workspace` owns two things:

* **tables/** — ingested datasets, one columnar directory per table
  (written through :mod:`repro.storage.persist`).  Tables are **live**:
  :meth:`Workspace.append_rows` adds a delta segment plus one append-
  journal line (an O(delta) write — the manifest is not rewritten) and
  advances the table's monotonic version, with a rolling content hash
  per version; :meth:`Workspace.compact_table` periodically folds the
  journal and the accumulated segments into checkpoints, keeping cold
  opens bounded by segment count rather than append count;
* **cache/**  — built artifacts (flat samples, zoom ladders), one
  directory per *build key*, each recording the table version (and
  that version's content hash) it corresponds to.

The build key is ``sha256(kind + table content hash + build params)``:
the same data with the same parameters always lands on the same key,
so a second ``build`` request is a pure cache hit, and editing the
source data (which changes the content hash) transparently misses and
rebuilds.  Nothing is keyed on paths or mtimes.

Artifacts form **lineages**: a fresh build is its own lineage root,
and the service's maintenance path (advancing a sample to a newer
table version by feeding only the delta rows through
:class:`~repro.core.maintenance.SampleMaintainer`) stores the result
as a *new* cache entry whose manifest points back at its parent — the
base artifact is never mutated, and a lineage keeps its root plus its
latest maintenance hops (a hop is pruned one append after being
superseded, bounding the disk cost of an append stream while leaving
in-flight readers a grace window).  An artifact is *servable* as long
as its
recorded content hash appears in the table's version history: after an
append, pre-append artifacts keep answering (staleness is reported)
until maintenance or an offline rebuild supersedes them, while a
``--replace`` re-ingest resets the history and hides them outright.

A workspace constructed with ``root=None`` is **ephemeral**: the same
API backed by process memory, used by the CLI's one-shot CSV mode so
that ``repro sample data.csv`` and ``repro sample --workspace ws t``
run the exact same code path.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
import time
from pathlib import Path

import numpy as np

from ..errors import SchemaError, StorageError, TableNotFoundError
from ..sampling.base import SampleResult
from ..storage.persist import (
    FORMAT_VERSION,
    append_table,
    compact_table as persist_compact_table,
    content_hash_arrays,
    load_sample_result,
    load_table_manifest,
    open_table,
    read_json,
    rolling_content_hash,
    save_sample_result,
    save_table,
    table_content_hash,
    table_storage_stats,
    write_json,
)
from ..storage.table import Table
from ..storage.zoom import ZoomLadder

#: Table names double as directory names, so they are restricted to a
#: filesystem-safe alphabet.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}")


def validate_table_name(name: str) -> str:
    if not _NAME_RE.fullmatch(name or ""):
        raise SchemaError(
            f"invalid workspace table name {name!r}: use 1-64 characters "
            "from [A-Za-z0-9_.-], starting with a letter or digit"
        )
    return name


class Workspace:
    """A persistent (or ephemeral) home for tables and cached builds."""

    #: ``True`` on follower replicas (see
    #: :class:`~repro.service.follower.FollowerWorkspace`): every
    #: mutation raises and the read paths poll the leader's journal.
    read_only = False

    def __init__(self, root: str | Path | None = None,
                 create: bool = True) -> None:
        """Open (or create) the workspace at ``root``.

        ``create=False`` refuses to materialise anything: opening a
        path that is not already a workspace raises instead of quietly
        leaving an empty directory behind (the CLI uses this for every
        verb except ``ingest``, so a typo'd ``--workspace`` is an error
        rather than a fresh workspace).
        """
        self.root = Path(root) if root is not None else None
        self._tables: dict[str, Table] = {}       # decoded-table cache
        self._hashes: dict[str, str] = {}         # name -> content hash
        self._columns: dict[str, list[dict]] = {}  # name -> column meta
        self._versions: dict[str, list[dict]] = {}  # name -> history
        self._mem_builds: dict[str, tuple[dict, object]] = {}  # ephemeral
        if self.root is not None:
            marker = self.root / "workspace.json"
            if marker.exists():
                manifest = read_json(marker)
                if manifest.get("kind") != "workspace":
                    raise StorageError(f"{self.root} is not a workspace")
                if manifest.get("format", 0) > FORMAT_VERSION:
                    raise StorageError(
                        f"workspace {self.root} uses format "
                        f"{manifest['format']}, newer than this build's "
                        f"{FORMAT_VERSION}"
                    )
            elif create:
                self.root.mkdir(parents=True, exist_ok=True)
                write_json(marker, {"format": FORMAT_VERSION,
                                    "kind": "workspace"})
            else:
                raise StorageError(
                    f"not a workspace: {self.root} "
                    "(ingest a CSV first: repro ingest data.csv "
                    f"--workspace {self.root})"
                )

    # -- plumbing ----------------------------------------------------------
    @property
    def is_ephemeral(self) -> bool:
        return self.root is None

    def reader_refresh(self) -> None:
        """Re-sync the view of backing storage before a read retry.

        No-op here: an in-process reader already shares every memo
        with its mutator.  Follower workspaces override this to force
        a journal/manifest re-poll, so the service's retry loops see
        the leader's durable successor after a pruned artifact."""

    def lag(self) -> dict | None:
        """Replication lag, or ``None`` — only followers are behind."""
        return None

    @property
    def _tables_dir(self) -> Path:
        assert self.root is not None
        return self.root / "tables"

    @property
    def _cache_dir(self) -> Path:
        assert self.root is not None
        return self.root / "cache"

    # -- tables ------------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        names = set(self._tables)
        if self.root is not None and self._tables_dir.is_dir():
            names.update(
                p.name for p in self._tables_dir.iterdir()
                if (p / "manifest.json").is_file()
            )
        return sorted(names)

    def has_table(self, name: str) -> bool:
        if name in self._tables:
            return True
        return (self.root is not None
                and (self._tables_dir / name / "manifest.json").is_file())

    def add_table(self, table: Table, replace: bool = False) -> str:
        """Register (and persist) a table; returns its content hash."""
        validate_table_name(table.name)
        if self.has_table(table.name) and not replace:
            raise SchemaError(
                f"table already exists in workspace: {table.name!r} "
                "(pass replace=True / --replace to overwrite)"
            )
        if self.root is not None:
            digest = save_table(table, self._tables_dir / table.name)
        else:
            digest = table_content_hash(table)
        self._tables[table.name] = table
        self._hashes[table.name] = digest
        self._columns[table.name] = [
            {"name": n, "type": table.column(n).ctype.name}
            for n in table.column_names
        ]
        self._versions[table.name] = [
            {"version": 0, "rows": len(table), "content_hash": digest}
        ]
        return digest

    def append_rows(self, name: str, arrays) -> dict:
        """Append rows to a live table; returns the post-append info.

        ``arrays`` is a ``{column: values}`` mapping covering exactly
        the table's columns.  On disk this writes one delta segment
        plus one journal line (:func:`repro.storage.persist.
        append_table` — the manifest is not rewritten); in memory the
        same rolling content hash is chained over the same coerced
        bytes, so ephemeral and persistent workspaces agree on every
        version's identity.  Decoded-table and metadata caches are
        updated in place — the caches never go stale mid-process.

        Cost: O(delta) either way.  A cold append (table not decoded)
        validates and writes the delta against the manifest alone; a
        warm append pushes one in-memory segment per column
        (:meth:`~repro.storage.Column.extended` shares the existing
        chunks instead of re-concatenating N rows).  Segments
        accumulate until :meth:`compact_table` folds them.
        """
        if not self.has_table(name):
            raise TableNotFoundError(name)
        if self.root is not None and name not in self._tables:
            before = self.table_info(name)["rows"]
            manifest = append_table(self._tables_dir / name, arrays)
            delta_rows = int(manifest["rows"]) - before
            if delta_rows > 0:
                self._hashes[name] = manifest["content_hash"]
                self._versions[name] = list(manifest["versions"])
            info = self.table_info(name)
            info["appended_rows"] = delta_rows
            return info
        table = self.table(name)
        appended = table.with_appended(arrays)
        delta_rows = len(appended) - len(table)
        if delta_rows > 0:
            if self.root is not None:
                manifest = append_table(self._tables_dir / name, arrays)
                digest = manifest["content_hash"]
                history = list(manifest["versions"])
            else:
                # Hash the coerced delta columns exactly as the disk
                # path does — not a slice of the concatenated arrays,
                # whose dtype (e.g. string width) can differ from the
                # standalone delta's and would fork the rolling hash.
                delta = content_hash_arrays({
                    n: table.column(n).ctype.coerce(np.asarray(arrays[n]))
                    for n in table.column_names
                })
                digest = rolling_content_hash(self.table_hash(name), delta)
                history = list(self.version_history(name))
                history.append({
                    "version": history[-1]["version"] + 1,
                    "rows": len(appended),
                    "content_hash": digest,
                })
            self._tables[name] = appended
            self._hashes[name] = digest
            self._versions[name] = history
        info = self.table_info(name)
        info["appended_rows"] = delta_rows
        return info

    # -- versions ----------------------------------------------------------
    def version_history(self, name: str) -> list[dict]:
        """``[{"version", "rows", "content_hash"}]``, oldest first.

        Loaded from the table manifest once and kept current in memory
        across appends; tables saved before the live-table format get a
        synthesised single-entry history (version 0).
        """
        if name in self._versions:
            return self._versions[name]
        if self.root is not None:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                manifest = load_table_manifest(manifest_path.parent)
                history = list(manifest.get("versions") or [{
                    "version": 0, "rows": manifest["rows"],
                    "content_hash": manifest["content_hash"],
                }])
                self._versions[name] = history
                return history
        if name in self._tables:
            history = [{"version": 0, "rows": len(self._tables[name]),
                        "content_hash": self.table_hash(name)}]
            self._versions[name] = history
            return history
        raise TableNotFoundError(name)

    def table_version(self, name: str) -> int:
        """The table's current (newest) version number."""
        return int(self.version_history(name)[-1]["version"])

    def version_by_hash(self, name: str) -> dict[str, dict]:
        """``content_hash -> {"version", "rows"}`` over the history.

        This is the lineage-visibility index: an artifact whose
        recorded hash appears here was built against *some* version of
        the current table (and can serve, at a known staleness), while
        a hash from replaced data does not appear and stays hidden.
        """
        return {
            entry["content_hash"]: {"version": int(entry["version"]),
                                    "rows": int(entry["rows"])}
            for entry in self.version_history(name)
        }

    def delta_xy(self, name: str, x: str, y: str,
                 start_row: int) -> np.ndarray:
        """The ``(delta, 2)`` coordinates of rows appended after
        ``start_row`` — what the maintenance path feeds through
        Expand/Shrink.  Reads only the segments past ``start_row``
        (:meth:`~repro.storage.Column.tail`), so the append path
        copies O(delta) and never consolidates the full column."""
        table = self.table(name)
        xs = table.column(x).tail(start_row).astype(np.float64)
        ys = table.column(y).tail(start_row).astype(np.float64)
        return np.stack([xs, ys], axis=1)

    def table(self, name: str) -> Table:
        """The decoded table (loaded from disk on first access)."""
        if name in self._tables:
            return self._tables[name]
        if self.root is not None:
            table_dir = self._tables_dir / name
            if (table_dir / "manifest.json").is_file():
                table = open_table(table_dir)
                self._tables[name] = table
                return table
        raise TableNotFoundError(name)

    def table_hash(self, name: str) -> str:
        """Content hash of a table, from its manifest when possible.

        The warm path never has to decode the column arrays: the hash
        was computed at ingest time and recorded in the manifest.
        """
        if name in self._hashes:
            return self._hashes[name]
        if self.root is not None:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                digest = load_table_manifest(
                    manifest_path.parent)["content_hash"]
                self._hashes[name] = digest
                return digest
        if name in self._tables:
            digest = table_content_hash(self._tables[name])
            self._hashes[name] = digest
            return digest
        raise TableNotFoundError(name)

    def table_columns(self, name: str) -> list[dict]:
        """``[{"name", "type"}]`` column metadata, memoized and
        manifest-only — the warm path never decodes the column
        arrays, and re-reads nothing after the first request."""
        if name in self._columns:
            return self._columns[name]
        if self.root is not None and name not in self._tables:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                columns = [{"name": c["name"], "type": c["type"]}
                           for c in read_json(manifest_path)["columns"]]
                self._columns[name] = columns
                return columns
        table = self.table(name)
        columns = [{"name": n, "type": table.column(n).ctype.name}
                   for n in table.column_names]
        self._columns[name] = columns
        return columns

    def table_info(self, name: str) -> dict:
        """Rows/columns/hash summary (manifest-only on the warm path)."""
        if self.root is not None and name not in self._tables:
            manifest_path = self._tables_dir / name / "manifest.json"
            if manifest_path.is_file():
                manifest = load_table_manifest(manifest_path.parent)
                return {
                    "name": name,
                    "rows": manifest["rows"],
                    "columns": [c["name"] for c in manifest["columns"]],
                    "content_hash": manifest["content_hash"],
                    "version": int(manifest.get("version", 0)),
                }
        table = self.table(name)
        return {
            "name": name,
            "rows": len(table),
            "columns": table.column_names,
            "content_hash": self.table_hash(name),
            "version": self.table_version(name),
        }

    # -- storage stats + compaction ----------------------------------------
    def storage_stats(self, name: str) -> dict:
        """``{"segments", "on_disk_bytes", "reclaimable_bytes"}`` for
        one table — the compaction-pressure gauge ``GET /tables`` and
        the :class:`~repro.service.CompactionPolicy` both read.

        On disk this is derived from the effective manifest (a stat
        per segment file, no array decode).  An ephemeral workspace
        reports its decoded columns' in-memory segment count; it has
        no disk to reclaim.
        """
        if not self.has_table(name):
            raise TableNotFoundError(name)
        if self.root is not None and (
                self._tables_dir / name / "manifest.json").is_file():
            return table_storage_stats(self._tables_dir / name)
        table = self._tables.get(name)
        return {
            "segments": table.segment_count if table is not None else 1,
            "on_disk_bytes": 0,
            "reclaimable_bytes": 0,
        }

    def table_summary(self, name: str) -> dict:
        """:meth:`table_info` plus a ``storage`` block, from **one**
        effective-manifest read — what per-table listing endpoints
        (``GET /tables``, ``workspace-info``) should call, so a scan
        over many tables parses each manifest + journal once, not
        twice."""
        if self.root is not None and name not in self._tables:
            table_dir = self._tables_dir / name
            if (table_dir / "manifest.json").is_file():
                manifest = load_table_manifest(table_dir)
                return {
                    "name": name,
                    "rows": manifest["rows"],
                    "columns": [c["name"] for c in manifest["columns"]],
                    "content_hash": manifest["content_hash"],
                    "version": int(manifest.get("version", 0)),
                    "storage": table_storage_stats(table_dir,
                                                   state=manifest),
                }
        info = self.table_info(name)
        info["storage"] = self.storage_stats(name)
        return info

    def compact_table(self, name: str, keep_hashes=None) -> dict:
        """Fold a live table's delta segments into checkpoints.

        ``keep_hashes`` — content hashes live cache artifacts still
        reference; those versions keep a segment boundary and stay
        re-openable, everything between them is folded, and history
        entries nobody references are truncated
        (:func:`repro.storage.persist.compact_table`).  The decoded
        in-memory table (if any) is consolidated to match, and the
        memoized version history is refreshed.  Content hashes are
        untouched, so every cache key stays valid.
        """
        if not self.has_table(name):
            raise TableNotFoundError(name)
        if self.root is not None and (
                self._tables_dir / name / "manifest.json").is_file():
            stats = persist_compact_table(self._tables_dir / name,
                                          keep_hashes=keep_hashes)
            self._versions[name] = list(stats.pop("versions"))
        else:
            history = self.version_history(name)
            keep_hashes = set(keep_hashes or ())
            kept = [entry for entry in history
                    if entry["content_hash"] in keep_hashes
                    or entry is history[-1]]
            self._versions[name] = kept
            stats = {
                "compacted": len(kept) != len(history),
                "version": int(history[-1]["version"]),
                "content_hash": history[-1]["content_hash"],
                "segments_before": 1,
                "segments_after": 1,
                "versions_dropped": len(history) - len(kept),
                "reclaimed_bytes": 0,
            }
        table = self._tables.get(name)
        if table is not None:
            if self.root is None:
                stats["segments_before"] = table.segment_count
            table.consolidate()
            if self.root is None:
                stats["segments_after"] = table.segment_count
        return stats

    # -- build cache -------------------------------------------------------
    def build_key(self, kind: str, table_name: str, params: dict) -> str:
        """The content-hash cache key of one build request."""
        identity = {
            "kind": kind,
            "content_hash": self.table_hash(table_name),
            "params": params,
        }
        blob = json.dumps(identity, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def cached_manifest(self, key: str) -> dict | None:
        """The stored build manifest, or ``None`` on a cache miss.

        Build metadata lives in ``build.json``, *next to* the payload's
        own ``manifest.json`` — the cache index and the storage format
        stay independent.
        """
        if self.root is None:
            entry = self._mem_builds.get(key)
            return entry[0] if entry else None
        manifest_path = self._cache_dir / key / "build.json"
        if not manifest_path.is_file():
            return None
        return read_json(manifest_path)

    def lineage_key(self, parent_key: str, table_name: str) -> str:
        """The cache key of a maintenance step: parent artifact
        advanced to the table's *current* version.  Distinct from the
        fresh-build key at the same version on purpose — a maintained
        sample is the deterministic product of (base build + delta
        stream), not of a from-scratch Interchange run, and the two
        must never answer for each other in the build cache."""
        identity = {
            "kind": "maintained",
            "parent": parent_key,
            "content_hash": self.table_hash(table_name),
        }
        blob = json.dumps(identity, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def _build_manifest(self, key: str, kind: str, table_name: str,
                        params: dict, extra: dict) -> dict:
        manifest = {
            "format": FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "table": table_name,
            "content_hash": self.table_hash(table_name),
            "table_version": self.table_version(table_name),
            "params": params,
            "created_unix": time.time(),
            **extra,
        }
        # Every artifact belongs to a lineage; a fresh build roots its
        # own (maintenance steps pass their root via ``extra``).
        manifest.setdefault("lineage", {"root": key})
        return manifest

    def store_sample_build(self, key: str, table_name: str, params: dict,
                           result: SampleResult,
                           extra: dict | None = None) -> dict:
        manifest = self._build_manifest(key, "sample", table_name, params,
                                        extra or {})
        if self.root is None:
            self._mem_builds[key] = (manifest, result)
        else:
            entry = self._cache_dir / key
            save_sample_result(result, entry)
            write_json(entry / "build.json", manifest)
        return manifest

    def load_sample_build(self, key: str) -> SampleResult:
        if self.root is None:
            manifest_and_payload = self._mem_builds.get(key)
            if manifest_and_payload is None:
                raise StorageError(f"no cached build {key!r}")
            return manifest_and_payload[1]  # type: ignore[return-value]
        return load_sample_result(self._cache_dir / key)

    def store_ladder_build(self, key: str, table_name: str, params: dict,
                           ladder: ZoomLadder,
                           extra: dict | None = None) -> dict:
        manifest = self._build_manifest(key, "ladder", table_name, params,
                                        extra or {})
        if self.root is None:
            self._mem_builds[key] = (manifest, ladder)
        else:
            entry = self._cache_dir / key
            entry.mkdir(parents=True, exist_ok=True)
            ladder.save(entry / "ladder.npz")
            write_json(entry / "build.json", manifest)
        return manifest

    def load_ladder_build(self, key: str) -> ZoomLadder:
        if self.root is None:
            manifest_and_payload = self._mem_builds.get(key)
            if manifest_and_payload is None:
                raise StorageError(f"no cached build {key!r}")
            return manifest_and_payload[1]  # type: ignore[return-value]
        return ZoomLadder.load(self._cache_dir / key / "ladder.npz")

    def drop_build(self, key: str) -> None:
        """Remove one cached build entry (payload and manifest).

        Used by the service to prune maintenance hops a newer hop has
        superseded; lineage roots are the caller's responsibility to
        keep.  Dropping an absent key is a no-op.
        """
        if self.root is None:
            self._mem_builds.pop(key, None)
            return
        entry = self._cache_dir / key
        if entry.is_dir():
            shutil.rmtree(entry, ignore_errors=True)

    def builds(self, kind: str | None = None,
               table: str | None = None) -> list[dict]:
        """Manifests of every cached build, newest last.

        Manifests are a handful of small JSON files; scanning them is
        the directory-listing cost, not an array-decoding cost.
        """
        manifests: list[dict] = []
        if self.root is None:
            # Snapshot: lock-free readers iterate while a mutation may
            # be inserting a maintenance entry.
            manifests = [m for m, _ in list(self._mem_builds.values())]
        elif self._cache_dir.is_dir():
            for entry in self._cache_dir.iterdir():
                manifest_path = entry / "build.json"
                if manifest_path.is_file():
                    try:
                        manifests.append(read_json(manifest_path))
                    except StorageError:
                        # Pruned mid-scan by a concurrent append's
                        # maintenance step; skip, don't fail the read.
                        continue
        if kind is not None:
            manifests = [m for m in manifests if m.get("kind") == kind]
        if table is not None:
            manifests = [m for m in manifests if m.get("table") == table]
        manifests.sort(key=lambda m: m.get("created_unix", 0.0))
        return manifests

    # -- summaries ---------------------------------------------------------
    def info(self) -> dict:
        """The ``repro workspace-info`` / ``GET /workspace`` payload."""
        builds = self.builds()
        return {
            "root": str(self.root) if self.root is not None else None,
            "format": FORMAT_VERSION,
            "tables": [self.table_summary(n) for n in self.table_names],
            "builds": [
                {k: m.get(k) for k in ("key", "kind", "table", "params",
                                       "created_unix")}
                for m in builds
            ],
        }
