"""Service layer: persistent workspaces and the query-serving facade.

This package is the bridge between the offline half of the paper (the
expensive VAS builds) and the online half (interactive viewport and
budgeted-sample queries):

* :class:`Workspace` — one directory owning ingested *live* tables
  (appendable, versioned, rolling content hashes) and a
  content-hash-keyed cache of built samples and zoom ladders organised
  into artifact lineages (:mod:`repro.service.workspace`);
* :class:`VasService` — the facade the CLI and the HTTP server share:
  ingest, build-or-reuse, appends with incremental sample/ladder
  maintenance under a :class:`MaintenancePolicy`, tile/viewport/sample
  query answering with an LRU of decoded ladders
  (:mod:`repro.service.service`);
* :func:`make_server` / :func:`serve` — a stdlib HTTP front end
  exposing the service under ``/v1/`` (immutable content-addressed
  tiles included), driven by one shared route table (``ROUTES``) that
  also generates the OpenAPI document, with graceful SIGTERM/SIGINT
  shutdown (:mod:`repro.service.http`).

``ERROR_STATUS`` / :func:`service_error_info` are the stable
error-code vocabulary of the wire envelope ``{"error": {"code",
"message"}}``.
"""

from .service import (
    ERROR_STATUS,
    BuildOutcome,
    CompactionPolicy,
    MaintenancePolicy,
    VasService,
    service_error_info,
)
from .follower import FollowerWorkspace
from .http import ROUTES, make_server, openapi_document, serve
from .supervisor import serve_forked
from .workspace import Workspace

__all__ = [
    "BuildOutcome",
    "CompactionPolicy",
    "ERROR_STATUS",
    "FollowerWorkspace",
    "MaintenancePolicy",
    "ROUTES",
    "VasService",
    "Workspace",
    "make_server",
    "openapi_document",
    "serve",
    "serve_forked",
    "service_error_info",
]
