"""Service layer: persistent workspaces and the query-serving facade.

This package is the bridge between the offline half of the paper (the
expensive VAS builds) and the online half (interactive viewport and
budgeted-sample queries):

* :class:`Workspace` — one directory owning ingested *live* tables
  (appendable, versioned, rolling content hashes) and a
  content-hash-keyed cache of built samples and zoom ladders organised
  into artifact lineages (:mod:`repro.service.workspace`);
* :class:`VasService` — the facade the CLI and the HTTP server share:
  ingest, build-or-reuse, appends with incremental sample/ladder
  maintenance under a :class:`MaintenancePolicy`, and query answering
  with an LRU of decoded ladders (:mod:`repro.service.service`);
* :func:`make_server` / :func:`serve` — a stdlib HTTP front end
  exposing the service as JSON endpoints, with graceful
  SIGTERM/SIGINT shutdown (:mod:`repro.service.http`).
"""

from .service import (
    BuildOutcome,
    CompactionPolicy,
    MaintenancePolicy,
    VasService,
)
from .http import make_server, serve
from .workspace import Workspace

__all__ = [
    "BuildOutcome",
    "CompactionPolicy",
    "MaintenancePolicy",
    "VasService",
    "Workspace",
    "make_server",
    "serve",
]
