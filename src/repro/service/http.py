"""The HTTP front end: ``repro serve`` exposing the service as JSON.

A deliberately dependency-free server on :mod:`http.server`
(threading variant — viewport answers are sub-millisecond index
probes, so a thread per connection is plenty; builds serialise on the
service lock).  Endpoints:

==========================  =============================================
``GET /healthz``            liveness probe
``GET /workspace``          workspace + cache summary
``GET /tables``             ingested tables (rows, columns, content hash)
``POST /build``             build-or-reuse; JSON body, e.g.
                            ``{"table": "t", "kind": "ladder",
                            "levels": 4, "k_per_tile": 256}`` —
                            answers ``{"key": …, "cached": true|false}``
``GET /viewport``           ``?table=&bbox=x0,y0,x1,y1[&zoom=&max_points=
                            &x=&y=]`` — points from the cached ladder
``GET /sample``             ``?table=[&method=&max_points=|&time_budget=
                            &seconds_per_point=&x=&y=&bbox=]`` — the
                            §II-D budgeted sample choice
==========================  =============================================

Errors come back as ``{"error": …}`` with 400 (bad request), 404
(unknown table / nothing built) or 500.  The server never builds on a
GET: query endpoints are pure cache reads, so worst-case latency stays
bounded by decode time, not Interchange time.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..errors import ReproError
from .service import VasService, service_error_status


def _parse_bbox(raw: str) -> tuple[float, float, float, float]:
    parts = [p for p in raw.replace(";", ",").split(",") if p.strip()]
    if len(parts) != 4:
        raise ValueError(f"bbox needs 4 comma-separated numbers, got {raw!r}")
    xmin, ymin, xmax, ymax = (float(p) for p in parts)
    return xmin, ymin, xmax, ymax


def _first(params: dict, name: str, default=None):
    values = params.get(name)
    return values[0] if values else default


def _maybe_int(value, name: str):
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def _maybe_float(value, name: str):
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None


class VasRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`VasService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # Set by make_server().
    service: VasService = None  # type: ignore[assignment]
    verbose: bool = False

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _dispatch(self, handler) -> None:
        try:
            payload, status = handler()
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error_json(str(exc), 400)
        except ReproError as exc:
            self._send_error_json(str(exc), service_error_status(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(f"internal error: {exc}", 500)
        else:
            self._send_json(payload, status=status)

    # -- GET ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        params = parse_qs(url.query)
        routes = {
            "/healthz": lambda: ({"ok": True}, 200),
            "/workspace": lambda: (self.service.info(), 200),
            "/": lambda: (self.service.info(), 200),
            "/tables": lambda: ({"tables": self.service.tables()}, 200),
            "/viewport": lambda: self._get_viewport(params),
            "/sample": lambda: self._get_sample(params),
        }
        handler = routes.get(url.path)
        if handler is None:
            self._send_error_json(f"unknown endpoint {url.path!r}", 404)
            return
        self._dispatch(handler)

    def _get_viewport(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        if raw_bbox is None:
            raise ValueError("missing required parameter: bbox")
        started = time.perf_counter()
        result = self.service.viewport(
            table, _parse_bbox(raw_bbox),
            x=_first(params, "x"), y=_first(params, "y"),
            zoom=_maybe_int(_first(params, "zoom"), "zoom"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        return {
            "table": table,
            "level": result.zoom_level,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }, 200

    def _get_sample(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        started = time.perf_counter()
        result = self.service.sample_query(
            table,
            x=_first(params, "x"), y=_first(params, "y"),
            method=_first(params, "method", "vas"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
            time_budget_seconds=_maybe_float(
                _first(params, "time_budget"), "time_budget"),
            seconds_per_point=(
                _maybe_float(_first(params, "seconds_per_point"),
                             "seconds_per_point")
                if "seconds_per_point" in params else 1e-6),
            bbox=_parse_bbox(raw_bbox) if raw_bbox else None,
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        payload = {
            "table": table,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }
        if result.weights is not None:
            payload["weights"] = result.weights.tolist()
        return payload, 200

    # -- POST --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Always drain the body first: on a keep-alive connection an
        # unread body would be parsed as the next request line.
        length = int(self.headers.get("Content-Length") or 0)
        raw_body = self.rfile.read(length) if length else b""
        url = urlparse(self.path)
        if url.path != "/build":
            self._send_error_json(f"unknown endpoint {url.path!r}", 404)
            return
        self._dispatch(lambda: self._post_build(raw_body))

    def _post_build(self, raw_body: bytes) -> tuple[dict, int]:
        try:
            body = json.loads(raw_body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        table = body.get("table")
        if not table:
            raise ValueError("missing required field: table")
        kind = body.get("kind", "ladder")
        started = time.perf_counter()
        if kind == "ladder":
            outcome = self.service.build_ladder(
                table, x=body.get("x"), y=body.get("y"),
                levels=int(body.get("levels", 4)),
                k_per_tile=int(body.get("k_per_tile", 256)),
                seed=int(body.get("seed", 0)),
            )
            stats = outcome.manifest.get("stats")
        elif kind == "sample":
            if "k" not in body:
                raise ValueError("sample builds need a 'k' field")
            outcome = self.service.build_sample(
                table, int(body["k"]), x=body.get("x"), y=body.get("y"),
                method=body.get("method", "vas"),
                seed=int(body.get("seed", 0)),
                engine=body.get("engine", "batched"),
                workers=int(body.get("workers", 1)),
            )
            stats = {"size": len(outcome.result)}
        else:
            raise ValueError(f"unknown build kind {kind!r} "
                             "(expected 'ladder' or 'sample')")
        return {
            "key": outcome.key,
            "kind": outcome.kind,
            "table": table,
            "cached": outcome.cached,
            "stats": stats,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }, 200


def make_server(service: VasService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 = ephemeral)."""
    handler = type("BoundVasRequestHandler", (VasRequestHandler,),
                   {"service": service, "verbose": verbose})
    return ThreadingHTTPServer((host, port), handler)


def serve(service: VasService, host: str = "127.0.0.1", port: int = 8000,
          verbose: bool = False) -> None:
    """Run the server until interrupted (the ``repro serve`` loop)."""
    server = make_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(workspace: {service.workspace.root or 'ephemeral'})")
    print("endpoints: /healthz /workspace /tables /viewport /sample "
          "POST /build — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
