"""The HTTP front end: ``repro serve`` exposing the service as JSON.

A deliberately dependency-free server on :mod:`http.server`
(threading variant — viewport answers are sub-millisecond index
probes, so a thread per connection is plenty; mutations serialise on
the service's mutate lock while GETs run lock-free).  Every endpoint
lives under ``/v1/``; the table below is generated from one shared
route table (``ROUTES``) that also drives dispatch and the OpenAPI
document at ``GET /v1/openapi.json``:

==============================  =========================================
``GET /v1/healthz``             liveness probe
``GET /v1/workspace``           workspace + cache summary
``GET /v1/tables``              ingested tables (rows, columns, content
                                hash, version, artifact staleness — the
                                staleness detail carries each artifact's
                                own pinned ``content_hash`` + params, so
                                a tile client bootstraps from this one
                                call)
``GET /v1/viewport``            ``?table=&bbox=x0,y0,x1,y1[&zoom=
                                &max_points=&x=&y=&filter=]`` — points
                                from the cached ladder
``GET /v1/sample``              ``?table=[&method=&max_points=|
                                &time_budget=&seconds_per_point=&x=&y=
                                &bbox=]`` — the §II-D budgeted sample
``GET /v1/splom``               ``?table=[&cols=a,b,c&method=
                                &max_points=]`` — cached per-pair SPLOM
``GET /v1/task-quality``        ``?table=&task=regression|clustering|
                                density[...]`` — served-sample task
                                score vs. the full-data reference
``GET /v1/tile/{table}/{version}/{level}/{x}/{y}``
                                one ladder tile in the binary "RVT1"
                                format (``?format=json`` to debug);
                                ``ETag`` = the version hash,
                                ``Cache-Control: public,
                                max-age=31536000, immutable``, and
                                ``If-None-Match`` answers ``304``
                                straight from the URL — no decode
``GET /v1/openapi.json``        the OpenAPI 3 document for all of this
``POST /v1/build``              build-or-reuse (``kind``: ladder /
                                sample / splom)
``POST /v1/append``             append rows to a live table
``POST /v1/compact``            fold delta segments + GC the cache
==============================  =========================================

The bare legacy paths (``/tables``, ``/viewport``, ...) remain as
deprecated aliases: they answer identically and add a ``Deprecation:
true`` header.  Version-hash tile URLs are forever-cacheable because
artifacts are never mutated — ``/v1/tables`` is the only uncacheable
hot-path GET.

Errors come back as ``{"error": {"code": <stable-slug>, "message":
...}}`` — codes and statuses live in
:data:`repro.service.service.ERROR_STATUS` (``bad_request`` /
``schema_error`` 400, ``unknown_table`` / ``not_built`` /
``unknown_endpoint`` 404, ``internal`` 500).  The server never builds
on a GET: query endpoints are pure cache reads, so worst-case latency
stays bounded by decode time, not Interchange time — and ``POST
/v1/append`` keeps that promise too, running only O(delta·K)
maintenance.

``repro serve`` shuts down gracefully: SIGTERM/SIGINT stop the accept
loop, in-flight requests run to completion (handler threads are
non-daemon and joined on close), and the workspace is quiesced via
:meth:`VasService.close` before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..errors import ReproError
from ..storage.zoom import encode_tile, tile_to_json

#: One shared compact encoder for every JSON body.  ``json.dumps``
#: defaults put a space after each separator — pure wire overhead on a
#: hot path whose whole budget is ~1 ms — and building a fresh encoder
#: per request is avoidable work.
_ENCODER = json.JSONEncoder(separators=(",", ":"))
from .service import ERROR_STATUS, VasService, service_error_info


def _parse_bbox(raw: str) -> tuple[float, float, float, float]:
    parts = [p for p in raw.replace(";", ",").split(",") if p.strip()]
    if len(parts) != 4:
        raise ValueError(f"bbox needs 4 comma-separated numbers, got {raw!r}")
    xmin, ymin, xmax, ymax = (float(p) for p in parts)
    return xmin, ymin, xmax, ymax


def _first(params: dict, name: str, default=None):
    values = params.get(name)
    return values[0] if values else default


def _maybe_int(value, name: str):
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def _maybe_float(value, name: str):
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None


def _path_int(path_params: dict, name: str) -> int:
    raw = path_params[name]
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


# -- the shared route table ----------------------------------------------

def _qp(name: str, type_: str = "string", required: bool = False,
        description: str = "") -> dict:
    """One OpenAPI query-parameter object (keeps ROUTES readable)."""
    param = {"name": name, "in": "query", "required": required,
             "schema": {"type": type_}}
    if description:
        param["description"] = description
    return param


@dataclass(frozen=True)
class Route:
    """One wire endpoint: dispatch *and* documentation in one record.

    ``path`` may contain ``{name}`` segments (captured into the
    handler's path params); ``legacy`` lists deprecated aliases that
    answer identically plus a ``Deprecation`` header; ``params`` /
    ``request_body`` / ``errors`` feed :func:`openapi_document`.
    """

    method: str
    path: str
    handler: str
    summary: str
    legacy: tuple[str, ...] = ()
    params: tuple[dict, ...] = ()
    errors: tuple[str, ...] = ()
    request_body: dict | None = None


#: The tile endpoint's templated path (referenced by the conditional-GET
#: plumbing and the OpenAPI generator's binary-response special case).
TILE_PATH = "/v1/tile/{table}/{version}/{level}/{x}/{y}"

_QUERY_ERRORS = ("bad_request", "schema_error", "unknown_table",
                 "not_built")

ROUTES: tuple[Route, ...] = (
    Route("GET", "/v1/healthz", "_get_healthz",
          "liveness probe + replication role: {ok, role: leader|"
          "follower, workers, follower_lag: {versions, seconds}}",
          legacy=("/healthz",)),
    Route("GET", "/v1/workspace", "_get_workspace",
          "workspace + cache summary", legacy=("/workspace", "/")),
    Route("GET", "/v1/tables", "_get_tables",
          "ingested tables with version + artifact staleness",
          legacy=("/tables",)),
    Route("GET", "/v1/viewport", "_get_viewport",
          "viewport query from the cached zoom ladder",
          legacy=("/viewport",),
          params=(
              _qp("table", required=True),
              _qp("bbox", required=True,
                  description="x0,y0,x1,y1 in data space"),
              _qp("x"), _qp("y"),
              _qp("zoom", "integer"),
              _qp("max_points", "integer"),
              _qp("filter",
                  description="predicate pushed into the tile walk, "
                              "e.g. x>=0.5,y<2"),
          ),
          errors=_QUERY_ERRORS),
    Route("GET", "/v1/sample", "_get_sample",
          "budgeted sample from the cached flat rungs",
          legacy=("/sample",),
          params=(
              _qp("table", required=True),
              _qp("x"), _qp("y"), _qp("method"),
              _qp("max_points", "integer"),
              _qp("time_budget", "number"),
              _qp("seconds_per_point", "number"),
              _qp("bbox"),
          ),
          errors=_QUERY_ERRORS),
    Route("GET", "/v1/splom", "_get_splom",
          "scatter-plot matrix from cached per-pair samples",
          legacy=("/splom",),
          params=(
              _qp("table", required=True),
              _qp("cols", description="comma-separated column subset"),
              _qp("method"),
              _qp("max_points", "integer"),
          ),
          errors=_QUERY_ERRORS),
    Route("GET", "/v1/task-quality", "_get_task_quality",
          "served-sample task score vs. the full-data reference",
          legacy=("/task-quality",),
          params=(
              _qp("table", required=True),
              _qp("task", required=True,
                  description="regression | clustering | density"),
              _qp("x"), _qp("y"), _qp("method"),
              _qp("observers", "integer"),
              _qp("questions", "integer"),
              _qp("seed", "integer"),
          ),
          errors=_QUERY_ERRORS),
    Route("GET", TILE_PATH, "_get_tile",
          "one immutable ladder tile (binary RVT1; ?format=json to "
          "debug)",
          params=(
              _qp("format",
                  description="'json' for the debugging view; default "
                              "is the binary RVT1 payload"),
          ),
          errors=_QUERY_ERRORS),
    Route("GET", "/v1/openapi.json", "_get_openapi",
          "this API, as an OpenAPI 3 document"),
    Route("POST", "/v1/build", "_post_build",
          "build-or-reuse a ladder / sample / splom artifact",
          legacy=("/build",),
          errors=("bad_request", "schema_error", "unknown_table",
                  "read_only"),
          request_body={
              "type": "object",
              "required": ["table"],
              "properties": {
                  "table": {"type": "string"},
                  "kind": {"type": "string",
                           "enum": ["ladder", "sample", "splom"]},
                  "levels": {"type": "integer"},
                  "k_per_tile": {"type": "integer"},
                  "k": {"type": "integer"},
                  "method": {"type": "string"},
                  "cols": {"type": "array",
                           "items": {"type": "string"}},
                  "seed": {"type": "integer"},
                  "engine": {"type": "string"},
                  "workers": {"type": "integer"},
                  "pilot": {"type": "string",
                            "enum": ["auto", "off"],
                            "description":
                                "sharded sample/splom builds only: "
                                "'auto' (default) warm-starts shards "
                                "from a pilot sample, 'off' keeps "
                                "cold shards"},
                  "pilot_size": {"type": "integer",
                                 "description":
                                     "pilot subsample rows (default "
                                     "min(n/shards, 8k))"},
                  "x": {"type": "string"}, "y": {"type": "string"},
              },
          }),
    Route("POST", "/v1/append", "_post_append",
          "append rows to a live table (artifacts advance "
          "incrementally — no build)",
          legacy=("/append",),
          errors=("bad_request", "schema_error", "unknown_table",
                  "read_only"),
          request_body={
              "type": "object",
              "required": ["table"],
              "properties": {
                  "table": {"type": "string"},
                  "rows": {"type": "array",
                           "items": {"type": "array",
                                     "items": {"type": "number"}}},
                  "columns": {"type": "object"},
              },
          }),
    Route("POST", "/v1/compact", "_post_compact",
          "fold delta segments into checkpoints + GC the cache",
          legacy=("/compact",),
          errors=("unknown_table", "read_only"),
          request_body={
              "type": "object",
              "properties": {"table": {"type": "string"}},
          }),
)


def _match_path(template: str, path: str) -> dict | None:
    """Path params if ``path`` matches ``template``, else ``None``."""
    if "{" not in template:
        return {} if path == template else None
    t_segments = template.strip("/").split("/")
    p_segments = path.strip("/").split("/")
    if len(t_segments) != len(p_segments):
        return None
    captured: dict[str, str] = {}
    for t_seg, p_seg in zip(t_segments, p_segments):
        if t_seg.startswith("{") and t_seg.endswith("}"):
            if not p_seg:
                return None
            captured[t_seg[1:-1]] = p_seg
        elif t_seg != p_seg:
            return None
    return captured


def match_route(method: str,
                path: str) -> tuple[Route, dict, bool] | None:
    """``(route, path params, via a deprecated alias?)`` or ``None``."""
    for route in ROUTES:
        if route.method != method:
            continue
        candidates = [(route.path, False)]
        candidates += [(alias, True) for alias in route.legacy]
        for candidate, deprecated in candidates:
            params = _match_path(candidate, path)
            if params is not None:
                return route, params, deprecated
    return None


_PATH_PARAM_TYPES = {"level": "integer", "x": "integer", "y": "integer"}


def openapi_document() -> dict:
    """The OpenAPI 3 document served at ``GET /v1/openapi.json``.

    Generated from :data:`ROUTES`, so the spec's paths and methods
    cannot drift from what the dispatcher actually serves — a test
    asserts the agreement.  Error responses reference one shared
    ``Error`` schema whose ``code`` enum is exactly
    :data:`~repro.service.service.ERROR_STATUS`.
    """
    paths: dict[str, dict] = {}
    for route in ROUTES:
        parameters = []
        for segment in route.path.strip("/").split("/"):
            if segment.startswith("{"):
                name = segment[1:-1]
                parameters.append({
                    "name": name, "in": "path", "required": True,
                    "schema": {
                        "type": _PATH_PARAM_TYPES.get(name, "string")},
                })
        parameters.extend(dict(p) for p in route.params)
        if route.path == TILE_PATH:
            responses: dict[str, dict] = {
                "200": {
                    "description": "one binary RVT1 tile "
                                   "(application/json with ?format=json)",
                    "content": {"application/octet-stream": {
                        "schema": {"type": "string",
                                   "format": "binary"}}},
                },
                "304": {
                    "description": "If-None-Match matched the version "
                                   "hash; the cached tile is current",
                },
            }
        else:
            responses = {"200": {
                "description": route.summary,
                "content": {"application/json": {
                    "schema": {"type": "object"}}},
            }}
        by_status: dict[int, list[str]] = {}
        for code in route.errors + ("internal",):
            by_status.setdefault(ERROR_STATUS[code], []).append(code)
        for status, codes in sorted(by_status.items()):
            responses[str(status)] = {
                "description": "error codes: " + ", ".join(sorted(codes)),
                "content": {"application/json": {
                    "schema": {"$ref": "#/components/schemas/Error"}}},
            }
        operation = {"summary": route.summary, "responses": responses}
        if parameters:
            operation["parameters"] = parameters
        if route.request_body is not None:
            operation["requestBody"] = {
                "required": True,
                "content": {"application/json": {
                    "schema": dict(route.request_body)}},
            }
        if route.legacy:
            operation["description"] = (
                "Deprecated aliases (answer identically, plus a "
                "Deprecation: true header): " + ", ".join(route.legacy))
        paths.setdefault(route.path, {})[route.method.lower()] = operation
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "repro serve",
            "version": "1",
            "description": "Visualization-aware sampling service: "
                           "cached-sample queries, live-table appends, "
                           "and immutable content-addressed tiles.",
        },
        "paths": paths,
        "components": {"schemas": {"Error": {
            "type": "object",
            "required": ["error"],
            "properties": {"error": {
                "type": "object",
                "required": ["code", "message"],
                "properties": {
                    "code": {"type": "string",
                             "enum": sorted(ERROR_STATUS)},
                    "message": {"type": "string"},
                },
            }},
        }}},
    }


@dataclass
class Response:
    """What a route handler hands back to the wire layer.

    JSON handlers may keep returning a plain ``(payload, status)``
    tuple; this richer form exists for the tile endpoint's binary
    bodies, extra headers (``ETag`` / ``Cache-Control``) and bodiless
    ``304`` answers.
    """

    status: int = 200
    payload: dict | None = None
    body: bytes | None = None
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()


def _etag_matches(header: str | None, etag: str) -> bool:
    """RFC 7232 If-None-Match: any listed tag (or ``*``) hits.

    Weak tags compare by opaque value — a CDN revalidating a tile it
    compressed sends ``W/"<hash>"`` and still deserves its 304.
    """
    if header is None:
        return False
    candidates = {tag.strip() for tag in header.split(",")}
    return ("*" in candidates or etag in candidates
            or f"W/{etag}" in candidates)


class VasRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`VasService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Headers and body go out as separate writes; with Nagle on, the
    #: body segment waits for the client's delayed ACK (~40 ms) on
    #: every keep-alive request.  TCP_NODELAY removes the floor.
    disable_nagle_algorithm = True

    # Set by make_server().
    service: VasService = None  # type: ignore[assignment]
    verbose: bool = False
    #: How many serving processes share this listen socket — 1 for a
    #: plain ``repro serve``, N under the ``--workers N`` supervisor.
    workers: int = 1

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.verbose:
            super().log_message(fmt, *args)

    def _send_payload(self, response: Response,
                      deprecated: bool = False) -> None:
        if response.body is not None:
            body = response.body
        elif response.payload is not None:
            body = _ENCODER.encode(response.payload).encode()
        else:
            body = b""
        self.send_response(response.status)
        if response.status != 304:
            self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        # Any origin may read the API (the demo tile viewer is a local
        # HTML file); mutations are still same-machine affairs.
        self.send_header("Access-Control-Allow-Origin", "*")
        if deprecated:
            self.send_header("Deprecation", "true")
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if body and response.status != 304:
            self.wfile.write(body)

    def _send_error_json(self, code: str, message: str,
                         status: int | None = None,
                         deprecated: bool = False) -> None:
        self._send_payload(Response(
            status=ERROR_STATUS[code] if status is None else status,
            payload={"error": {"code": code, "message": message}},
        ), deprecated=deprecated)

    def _dispatch(self, handler, deprecated: bool = False) -> None:
        try:
            result = handler()
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error_json("bad_request", str(exc),
                                  deprecated=deprecated)
        except ReproError as exc:
            code, status = service_error_info(exc)
            self._send_error_json(code, str(exc), status=status,
                                  deprecated=deprecated)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json("internal", f"internal error: {exc}",
                                  deprecated=deprecated)
        else:
            if not isinstance(result, Response):
                payload, status = result
                result = Response(status=status, payload=payload)
            self._send_payload(result, deprecated=deprecated)

    # -- GET ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        matched = match_route("GET", url.path)
        if matched is None:
            self._send_error_json("unknown_endpoint",
                                  f"unknown endpoint {url.path!r}")
            return
        route, path_params, deprecated = matched
        params = parse_qs(url.query)
        handler = getattr(self, route.handler)
        self._dispatch(lambda: handler(params, path_params),
                       deprecated=deprecated)

    def _get_healthz(self, params, path_params) -> tuple[dict, int]:
        payload = {"ok": True, "role": self.service.role,
                   "workers": self.workers}
        lag = self.service.follower_lag()
        if lag is not None:
            payload["follower_lag"] = lag
        return payload, 200

    def _get_workspace(self, params, path_params) -> tuple[dict, int]:
        return self.service.info(), 200

    @staticmethod
    def _tables_memo_key(tables: list[dict]) -> tuple:
        """Everything that can change the ``/v1/tables`` body.

        The summary fields are functions of (content hash, version,
        storage stats) and the staleness block is a function of (hash,
        artifact set, per-artifact lag) — so this tuple changing is
        exactly the body changing, and comparing it is far cheaper
        than re-encoding a many-table payload per poll."""
        return tuple(
            (t["name"], t["content_hash"], t["version"], t["rows"],
             tuple(sorted(t.get("storage", {}).items())),
             tuple((a["key"], a["stale_rows"], a["needs_rebuild"])
                   for a in t["staleness"]["detail"]))
            for t in tables
        )

    def _get_tables(self, params, path_params) -> Response:
        tables = self.service.tables()
        key = self._tables_memo_key(tables)
        memo = getattr(self.server, "tables_body_memo", None)
        if memo is not None and memo[0] == key:
            body = memo[1]
        else:
            body = _ENCODER.encode({"tables": tables}).encode()
            self.server.tables_body_memo = (key, body)
        return Response(body=body)

    def _get_openapi(self, params, path_params) -> tuple[dict, int]:
        return openapi_document(), 200

    def _get_tile(self, params, path_params) -> Response:
        version = path_params["version"]
        etag = f'"{version}"'
        cache_headers = (
            ("ETag", etag),
            ("Cache-Control", "public, max-age=31536000, immutable"),
        )
        if _etag_matches(self.headers.get("If-None-Match"), etag):
            # The version hash in the URL *is* the content identity
            # (artifacts are immutable), so revalidation is answered
            # from the request line alone — no ladder decode, no
            # service call.  An unknown hash revalidates too: the
            # client by definition holds a payload this URL once
            # served.
            return Response(status=304, headers=cache_headers)
        tile, _ = self.service.tile_query(
            path_params["table"],
            _path_int(path_params, "level"),
            _path_int(path_params, "x"),
            _path_int(path_params, "y"),
            version_hash=version,
        )
        if _first(params, "format") == "json":
            return Response(payload=tile_to_json(tile),
                            headers=cache_headers)
        return Response(body=encode_tile(tile),
                        content_type="application/octet-stream",
                        headers=cache_headers)

    def _get_viewport(self, params, path_params) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        if raw_bbox is None:
            raise ValueError("missing required parameter: bbox")
        started = time.perf_counter()
        result = self.service.viewport(
            table, _parse_bbox(raw_bbox),
            x=_first(params, "x"), y=_first(params, "y"),
            zoom=_maybe_int(_first(params, "zoom"), "zoom"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
            predicate=_first(params, "filter"),
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        return {
            "table": table,
            "level": result.zoom_level,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }, 200

    def _get_sample(self, params, path_params) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        # The rendering-rate default lives in the VasService.sample_query
        # signature; the kwarg is only passed when the client set it, so
        # the two layers cannot drift.
        budget_kwargs = {}
        if "seconds_per_point" in params:
            budget_kwargs["seconds_per_point"] = _maybe_float(
                _first(params, "seconds_per_point"), "seconds_per_point")
        started = time.perf_counter()
        result = self.service.sample_query(
            table,
            x=_first(params, "x"), y=_first(params, "y"),
            method=_first(params, "method", "vas"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
            time_budget_seconds=_maybe_float(
                _first(params, "time_budget"), "time_budget"),
            bbox=_parse_bbox(raw_bbox) if raw_bbox else None,
            **budget_kwargs,
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        payload = {
            "table": table,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }
        if result.weights is not None:
            payload["weights"] = result.weights.tolist()
        return payload, 200

    def _get_splom(self, params, path_params) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        started = time.perf_counter()
        answer = self.service.splom_query(
            table,
            cols=_first(params, "cols"),
            method=_first(params, "method", "vas"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        panels = []
        for panel in answer["panels"]:
            result = panel["result"]
            entry = {
                "x": panel["x"], "y": panel["y"],
                "method": result.method,
                "sample_size": result.sample_size,
                "returned_rows": result.returned_rows,
                "points": result.points.tolist(),
            }
            if result.weights is not None:
                entry["weights"] = result.weights.tolist()
            panels.append(entry)
        return {
            "table": table,
            "columns": answer["columns"],
            "panels": panels,
            "elapsed_ms": round(elapsed_ms, 3),
        }, 200

    def _get_task_quality(self, params, path_params) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        task = _first(params, "task")
        if task is None:
            raise ValueError("missing required parameter: task")
        kwargs = {}
        observers = _maybe_int(_first(params, "observers"), "observers")
        if observers is not None:
            kwargs["n_observers"] = observers
        questions = _maybe_int(_first(params, "questions"), "questions")
        if questions is not None:
            kwargs["n_questions"] = questions
        seed = _maybe_int(_first(params, "seed"), "seed")
        if seed is not None:
            kwargs["seed"] = seed
        started = time.perf_counter()
        report = self.service.task_quality(
            table, task,
            x=_first(params, "x"), y=_first(params, "y"),
            method=_first(params, "method", "vas"),
            **kwargs,
        )
        report["elapsed_ms"] = round(
            (time.perf_counter() - started) * 1e3, 3)
        return report, 200

    # -- POST --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Always drain the body first: on a keep-alive connection an
        # unread body would be parsed as the next request line.
        length = int(self.headers.get("Content-Length") or 0)
        raw_body = self.rfile.read(length) if length else b""
        url = urlparse(self.path)
        matched = match_route("POST", url.path)
        if matched is None:
            self._send_error_json("unknown_endpoint",
                                  f"unknown endpoint {url.path!r}")
            return
        route, _path_params, deprecated = matched
        handler = getattr(self, route.handler)
        self._dispatch(lambda: handler(raw_body), deprecated=deprecated)

    @staticmethod
    def _json_body(raw_body: bytes) -> dict:
        try:
            body = json.loads(raw_body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _post_append(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        table = body.get("table")
        if not table:
            raise ValueError("missing required field: table")
        if ("rows" in body) == ("columns" in body):
            raise ValueError(
                "append body needs exactly one of 'rows' (positional, "
                "table column order) or 'columns' (by name)"
            )
        # Shape-check before dispatch: a JSON array under 'columns'
        # would otherwise fall through to the positional path and
        # silently append *transposed* data.
        if "rows" in body:
            if not isinstance(body["rows"], list):
                raise ValueError("'rows' must be a JSON array of rows")
            payload = body["rows"]
        else:
            if not isinstance(body["columns"], dict):
                raise ValueError(
                    "'columns' must be a JSON object mapping column "
                    "names to value arrays"
                )
            payload = body["columns"]
        started = time.perf_counter()
        info = self.service.append_rows(table, payload)
        info["elapsed_ms"] = round((time.perf_counter() - started) * 1e3, 3)
        return info, 200

    def _post_compact(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        started = time.perf_counter()
        if body.get("table"):
            reports = [self.service.compact_table(body["table"])]
        else:
            reports = self.service.compact_all()
        return {
            "compacted": reports,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }, 200

    def _post_build(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        table = body.get("table")
        if not table:
            raise ValueError("missing required field: table")
        kind = body.get("kind", "ladder")
        started = time.perf_counter()
        if kind == "ladder":
            outcome = self.service.build_ladder(
                table, x=body.get("x"), y=body.get("y"),
                levels=int(body.get("levels", 4)),
                k_per_tile=int(body.get("k_per_tile", 256)),
                seed=int(body.get("seed", 0)),
            )
            stats = outcome.manifest.get("stats")
        elif kind == "sample":
            if "k" not in body:
                raise ValueError("sample builds need a 'k' field")
            outcome = self.service.build_sample(
                table, int(body["k"]), x=body.get("x"), y=body.get("y"),
                method=body.get("method", "vas"),
                seed=int(body.get("seed", 0)),
                engine=body.get("engine", "batched"),
                workers=int(body.get("workers", 1)),
                pilot=body.get("pilot", "auto"),
                pilot_size=(int(body["pilot_size"])
                            if body.get("pilot_size") is not None else None),
            )
            stats = {"size": len(outcome.result)}
        elif kind == "splom":
            if "k" not in body:
                raise ValueError("splom builds need a 'k' field")
            report = self.service.build_splom(
                table, int(body["k"]), cols=body.get("cols"),
                method=body.get("method", "vas"),
                seed=int(body.get("seed", 0)),
                engine=body.get("engine", "batched"),
                workers=int(body.get("workers", 1)),
                pilot=body.get("pilot", "auto"),
                pilot_size=(int(body["pilot_size"])
                            if body.get("pilot_size") is not None else None),
            )
            return {
                "kind": "splom",
                "table": table,
                "columns": report["columns"],
                "pairs": report["pairs"],
                "cached": all(p["cached"] for p in report["pairs"]),
                "elapsed_ms": round(
                    (time.perf_counter() - started) * 1e3, 3),
            }, 200
        else:
            raise ValueError(f"unknown build kind {kind!r} "
                             "(expected 'ladder', 'sample' or 'splom')")
        return {
            "key": outcome.key,
            "kind": outcome.kind,
            "table": table,
            "cached": outcome.cached,
            "stats": stats,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }, 200


class GracefulHTTPServer(ThreadingHTTPServer):
    """Threading server whose close waits for in-flight requests.

    ``ThreadingHTTPServer`` marks handler threads daemon, so a process
    exit can kill a request mid-response (or mid-append).  Non-daemon
    threads plus ``block_on_close`` make :meth:`server_close` join
    every outstanding handler before returning — the graceful-shutdown
    half of ``repro serve``.  A socket timeout bounds how long an idle
    keep-alive connection can hold a thread (and thus the close).
    """

    daemon_threads = False
    block_on_close = True
    #: The socketserver default backlog (5) drops SYNs when a burst of
    #: clients connects at once; the kernel retransmits at 1/3/9/27 s,
    #: which reads as multi-second p99s.  Match the supervisor's
    #: shared-socket ``listen(128)``.
    request_queue_size = 128


def install_graceful_shutdown(server: ThreadingHTTPServer) -> dict:
    """SIGTERM/SIGINT → stop accepting, let in-flight requests finish.

    ``server.shutdown()`` must not run on the thread inside
    ``serve_forever`` (it waits for that loop to acknowledge), and a
    signal handler runs exactly there — so the handler hands the
    shutdown to a helper thread and returns.  Installed only from the
    main thread (the signal API's requirement); callers embedding the
    server elsewhere simply keep their own handling.  Returns a state
    dict whose ``"signal"`` records the first signal received.
    """
    state = {"signal": None}

    def handler(signum, frame):  # pragma: no cover - exercised via CLI
        if state["signal"] is None:
            state["signal"] = signum
            # One graceful chance: restore the default disposition so a
            # second Ctrl-C / SIGTERM force-exits instead of being
            # swallowed while a long in-flight request is joined.
            for restored in (signal.SIGTERM, signal.SIGINT):
                signal.signal(restored, signal.SIG_DFL)
            threading.Thread(target=server.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, handler)
    return state


def _bound_handler(service: VasService, verbose: bool,
                   workers: int) -> type:
    return type("BoundVasRequestHandler", (VasRequestHandler,),
                {"service": service, "verbose": verbose,
                 "workers": workers, "timeout": 30})


def make_server(service: VasService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                workers: int = 1) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 = ephemeral)."""
    return GracefulHTTPServer((host, port),
                              _bound_handler(service, verbose, workers))


def adopt_socket_server(service: VasService, sock,
                        verbose: bool = False,
                        workers: int = 1) -> ThreadingHTTPServer:
    """A server over an already-bound, already-listening socket.

    The ``--workers N`` supervisor binds once and forks; each worker
    wraps the inherited socket here instead of binding again, so all
    workers share one accept queue and the kernel load-balances
    connections across them.
    """
    host, port = sock.getsockname()[:2]
    server = GracefulHTTPServer((host, port),
                                _bound_handler(service, verbose, workers),
                                bind_and_activate=False)
    server.socket.close()  # the unbound placeholder TCPServer made
    server.socket = sock
    server.server_name = host
    server.server_port = port
    return server


def serve(service: VasService, host: str = "127.0.0.1", port: int = 8000,
          verbose: bool = False) -> None:
    """Run the server until interrupted (the ``repro serve`` loop).

    SIGTERM and SIGINT both shut down cleanly: the accept loop stops,
    in-flight requests complete, and the workspace is quiesced before
    the function returns.
    """
    server = make_server(service, host=host, port=port, verbose=verbose)
    state = install_graceful_shutdown(server)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(workspace: {service.workspace.root or 'ephemeral'})")
    print("endpoints: /v1/healthz /v1/workspace /v1/tables /v1/viewport "
          "/v1/sample /v1/splom /v1/task-quality "
          "/v1/tile/{table}/{version}/{level}/{x}/{y} /v1/openapi.json "
          "POST /v1/build /v1/append /v1/compact (bare legacy paths are "
          "deprecated aliases) — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Fallback for embedding contexts without the signal handlers.
        pass
    finally:
        received = state.get("signal")
        name = signal.Signals(received).name if received else "interrupt"
        print(f"\nrepro serve: {name} received — finishing in-flight "
              "requests")
        server.server_close()
        service.close()
        print("repro serve: workspace closed, bye")
