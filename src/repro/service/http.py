"""The HTTP front end: ``repro serve`` exposing the service as JSON.

A deliberately dependency-free server on :mod:`http.server`
(threading variant — viewport answers are sub-millisecond index
probes, so a thread per connection is plenty; mutations serialise on
the service's mutate lock while GETs run lock-free).  Endpoints:

==========================  =============================================
``GET /healthz``            liveness probe
``GET /workspace``          workspace + cache summary
``GET /tables``             ingested tables (rows, columns, content
                            hash, version, artifact staleness)
``POST /build``             build-or-reuse; JSON body, e.g.
                            ``{"table": "t", "kind": "ladder",
                            "levels": 4, "k_per_tile": 256}`` —
                            answers ``{"key": …, "cached": true|false}``
``POST /append``            append rows to a live table; JSON body
                            ``{"table": "t", "rows": [[…], …]}`` (rows
                            in table column order) or ``{"table": "t",
                            "columns": {"x": […], …}}`` — cached
                            artifacts advance incrementally (no build)
``POST /compact``           fold a live table's delta segments into
                            checkpoints and garbage-collect its cache;
                            JSON body ``{"table": "t"}`` (omit the
                            table to compact every table)
``GET /viewport``           ``?table=&bbox=x0,y0,x1,y1[&zoom=&max_points=
                            &x=&y=]`` — points from the cached ladder
``GET /sample``             ``?table=[&method=&max_points=|&time_budget=
                            &seconds_per_point=&x=&y=&bbox=]`` — the
                            §II-D budgeted sample choice
``GET /splom``              ``?table=[&cols=a,b,c&method=&max_points=]``
                            — one cached per-pair sample per panel of
                            the scatter-plot matrix
``GET /task-quality``       ``?table=&task=regression|clustering|density
                            [&x=&y=&method=&observers=&questions=
                            &seed=]`` — served-sample task score vs.
                            the full-data reference
==========================  =============================================

``GET /viewport`` also takes ``&filter=`` — a predicate over the
plotted columns (compact form ``x>=0.5,y<2`` or a JSON spec) pushed
down into the ladder's tile walk.  ``POST /build`` accepts ``"kind":
"splom"`` with ``"cols"`` to build every pair at once.

Errors come back as ``{"error": …}`` with 400 (bad request), 404
(unknown table / nothing built) or 500.  The server never builds on a
GET: query endpoints are pure cache reads, so worst-case latency stays
bounded by decode time, not Interchange time — and ``POST /append``
keeps that promise too, running only O(delta·K) maintenance.

``repro serve`` shuts down gracefully: SIGTERM/SIGINT stop the accept
loop, in-flight requests run to completion (handler threads are
non-daemon and joined on close), and the workspace is quiesced via
:meth:`VasService.close` before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..errors import ReproError
from .service import VasService, service_error_status


def _parse_bbox(raw: str) -> tuple[float, float, float, float]:
    parts = [p for p in raw.replace(";", ",").split(",") if p.strip()]
    if len(parts) != 4:
        raise ValueError(f"bbox needs 4 comma-separated numbers, got {raw!r}")
    xmin, ymin, xmax, ymax = (float(p) for p in parts)
    return xmin, ymin, xmax, ymax


def _first(params: dict, name: str, default=None):
    values = params.get(name)
    return values[0] if values else default


def _maybe_int(value, name: str):
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def _maybe_float(value, name: str):
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None


class VasRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`VasService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # Set by make_server().
    service: VasService = None  # type: ignore[assignment]
    verbose: bool = False

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _dispatch(self, handler) -> None:
        try:
            payload, status = handler()
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error_json(str(exc), 400)
        except ReproError as exc:
            self._send_error_json(str(exc), service_error_status(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(f"internal error: {exc}", 500)
        else:
            self._send_json(payload, status=status)

    # -- GET ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        params = parse_qs(url.query)
        routes = {
            "/healthz": lambda: ({"ok": True}, 200),
            "/workspace": lambda: (self.service.info(), 200),
            "/": lambda: (self.service.info(), 200),
            "/tables": lambda: ({"tables": self.service.tables()}, 200),
            "/viewport": lambda: self._get_viewport(params),
            "/sample": lambda: self._get_sample(params),
            "/splom": lambda: self._get_splom(params),
            "/task-quality": lambda: self._get_task_quality(params),
        }
        handler = routes.get(url.path)
        if handler is None:
            self._send_error_json(f"unknown endpoint {url.path!r}", 404)
            return
        self._dispatch(handler)

    def _get_viewport(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        if raw_bbox is None:
            raise ValueError("missing required parameter: bbox")
        started = time.perf_counter()
        result = self.service.viewport(
            table, _parse_bbox(raw_bbox),
            x=_first(params, "x"), y=_first(params, "y"),
            zoom=_maybe_int(_first(params, "zoom"), "zoom"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
            predicate=_first(params, "filter"),
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        return {
            "table": table,
            "level": result.zoom_level,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }, 200

    def _get_sample(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        raw_bbox = _first(params, "bbox")
        # The rendering-rate default lives in the VasService.sample_query
        # signature; the kwarg is only passed when the client set it, so
        # the two layers cannot drift.
        budget_kwargs = {}
        if "seconds_per_point" in params:
            budget_kwargs["seconds_per_point"] = _maybe_float(
                _first(params, "seconds_per_point"), "seconds_per_point")
        started = time.perf_counter()
        result = self.service.sample_query(
            table,
            x=_first(params, "x"), y=_first(params, "y"),
            method=_first(params, "method", "vas"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
            time_budget_seconds=_maybe_float(
                _first(params, "time_budget"), "time_budget"),
            bbox=_parse_bbox(raw_bbox) if raw_bbox else None,
            **budget_kwargs,
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        payload = {
            "table": table,
            "method": result.method,
            "sample_size": result.sample_size,
            "returned_rows": result.returned_rows,
            "elapsed_ms": round(elapsed_ms, 3),
            "points": result.points.tolist(),
        }
        if result.weights is not None:
            payload["weights"] = result.weights.tolist()
        return payload, 200

    def _get_splom(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        started = time.perf_counter()
        answer = self.service.splom_query(
            table,
            cols=_first(params, "cols"),
            method=_first(params, "method", "vas"),
            max_points=_maybe_int(_first(params, "max_points"),
                                  "max_points"),
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        panels = []
        for panel in answer["panels"]:
            result = panel["result"]
            entry = {
                "x": panel["x"], "y": panel["y"],
                "method": result.method,
                "sample_size": result.sample_size,
                "returned_rows": result.returned_rows,
                "points": result.points.tolist(),
            }
            if result.weights is not None:
                entry["weights"] = result.weights.tolist()
            panels.append(entry)
        return {
            "table": table,
            "columns": answer["columns"],
            "panels": panels,
            "elapsed_ms": round(elapsed_ms, 3),
        }, 200

    def _get_task_quality(self, params: dict) -> tuple[dict, int]:
        table = _first(params, "table")
        if table is None:
            raise ValueError("missing required parameter: table")
        task = _first(params, "task")
        if task is None:
            raise ValueError("missing required parameter: task")
        kwargs = {}
        observers = _maybe_int(_first(params, "observers"), "observers")
        if observers is not None:
            kwargs["n_observers"] = observers
        questions = _maybe_int(_first(params, "questions"), "questions")
        if questions is not None:
            kwargs["n_questions"] = questions
        seed = _maybe_int(_first(params, "seed"), "seed")
        if seed is not None:
            kwargs["seed"] = seed
        started = time.perf_counter()
        report = self.service.task_quality(
            table, task,
            x=_first(params, "x"), y=_first(params, "y"),
            method=_first(params, "method", "vas"),
            **kwargs,
        )
        report["elapsed_ms"] = round(
            (time.perf_counter() - started) * 1e3, 3)
        return report, 200

    # -- POST --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Always drain the body first: on a keep-alive connection an
        # unread body would be parsed as the next request line.
        length = int(self.headers.get("Content-Length") or 0)
        raw_body = self.rfile.read(length) if length else b""
        url = urlparse(self.path)
        routes = {
            "/build": self._post_build,
            "/append": self._post_append,
            "/compact": self._post_compact,
        }
        handler = routes.get(url.path)
        if handler is None:
            self._send_error_json(f"unknown endpoint {url.path!r}", 404)
            return
        self._dispatch(lambda: handler(raw_body))

    @staticmethod
    def _json_body(raw_body: bytes) -> dict:
        try:
            body = json.loads(raw_body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _post_append(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        table = body.get("table")
        if not table:
            raise ValueError("missing required field: table")
        if ("rows" in body) == ("columns" in body):
            raise ValueError(
                "append body needs exactly one of 'rows' (positional, "
                "table column order) or 'columns' (by name)"
            )
        # Shape-check before dispatch: a JSON array under 'columns'
        # would otherwise fall through to the positional path and
        # silently append *transposed* data.
        if "rows" in body:
            if not isinstance(body["rows"], list):
                raise ValueError("'rows' must be a JSON array of rows")
            payload = body["rows"]
        else:
            if not isinstance(body["columns"], dict):
                raise ValueError(
                    "'columns' must be a JSON object mapping column "
                    "names to value arrays"
                )
            payload = body["columns"]
        started = time.perf_counter()
        info = self.service.append_rows(table, payload)
        info["elapsed_ms"] = round((time.perf_counter() - started) * 1e3, 3)
        return info, 200

    def _post_compact(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        started = time.perf_counter()
        if body.get("table"):
            reports = [self.service.compact_table(body["table"])]
        else:
            reports = self.service.compact_all()
        return {
            "compacted": reports,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }, 200

    def _post_build(self, raw_body: bytes) -> tuple[dict, int]:
        body = self._json_body(raw_body)
        table = body.get("table")
        if not table:
            raise ValueError("missing required field: table")
        kind = body.get("kind", "ladder")
        started = time.perf_counter()
        if kind == "ladder":
            outcome = self.service.build_ladder(
                table, x=body.get("x"), y=body.get("y"),
                levels=int(body.get("levels", 4)),
                k_per_tile=int(body.get("k_per_tile", 256)),
                seed=int(body.get("seed", 0)),
            )
            stats = outcome.manifest.get("stats")
        elif kind == "sample":
            if "k" not in body:
                raise ValueError("sample builds need a 'k' field")
            outcome = self.service.build_sample(
                table, int(body["k"]), x=body.get("x"), y=body.get("y"),
                method=body.get("method", "vas"),
                seed=int(body.get("seed", 0)),
                engine=body.get("engine", "batched"),
                workers=int(body.get("workers", 1)),
            )
            stats = {"size": len(outcome.result)}
        elif kind == "splom":
            if "k" not in body:
                raise ValueError("splom builds need a 'k' field")
            report = self.service.build_splom(
                table, int(body["k"]), cols=body.get("cols"),
                method=body.get("method", "vas"),
                seed=int(body.get("seed", 0)),
                engine=body.get("engine", "batched"),
                workers=int(body.get("workers", 1)),
            )
            return {
                "kind": "splom",
                "table": table,
                "columns": report["columns"],
                "pairs": report["pairs"],
                "cached": all(p["cached"] for p in report["pairs"]),
                "elapsed_ms": round(
                    (time.perf_counter() - started) * 1e3, 3),
            }, 200
        else:
            raise ValueError(f"unknown build kind {kind!r} "
                             "(expected 'ladder', 'sample' or 'splom')")
        return {
            "key": outcome.key,
            "kind": outcome.kind,
            "table": table,
            "cached": outcome.cached,
            "stats": stats,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }, 200


class GracefulHTTPServer(ThreadingHTTPServer):
    """Threading server whose close waits for in-flight requests.

    ``ThreadingHTTPServer`` marks handler threads daemon, so a process
    exit can kill a request mid-response (or mid-append).  Non-daemon
    threads plus ``block_on_close`` make :meth:`server_close` join
    every outstanding handler before returning — the graceful-shutdown
    half of ``repro serve``.  A socket timeout bounds how long an idle
    keep-alive connection can hold a thread (and thus the close).
    """

    daemon_threads = False
    block_on_close = True


def install_graceful_shutdown(server: ThreadingHTTPServer) -> dict:
    """SIGTERM/SIGINT → stop accepting, let in-flight requests finish.

    ``server.shutdown()`` must not run on the thread inside
    ``serve_forever`` (it waits for that loop to acknowledge), and a
    signal handler runs exactly there — so the handler hands the
    shutdown to a helper thread and returns.  Installed only from the
    main thread (the signal API's requirement); callers embedding the
    server elsewhere simply keep their own handling.  Returns a state
    dict whose ``"signal"`` records the first signal received.
    """
    state = {"signal": None}

    def handler(signum, frame):  # pragma: no cover - exercised via CLI
        if state["signal"] is None:
            state["signal"] = signum
            # One graceful chance: restore the default disposition so a
            # second Ctrl-C / SIGTERM force-exits instead of being
            # swallowed while a long in-flight request is joined.
            for restored in (signal.SIGTERM, signal.SIGINT):
                signal.signal(restored, signal.SIG_DFL)
            threading.Thread(target=server.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, handler)
    return state


def make_server(service: VasService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 = ephemeral)."""
    handler = type("BoundVasRequestHandler", (VasRequestHandler,),
                   {"service": service, "verbose": verbose,
                    "timeout": 30})
    return GracefulHTTPServer((host, port), handler)


def serve(service: VasService, host: str = "127.0.0.1", port: int = 8000,
          verbose: bool = False) -> None:
    """Run the server until interrupted (the ``repro serve`` loop).

    SIGTERM and SIGINT both shut down cleanly: the accept loop stops,
    in-flight requests complete, and the workspace is quiesced before
    the function returns.
    """
    server = make_server(service, host=host, port=port, verbose=verbose)
    state = install_graceful_shutdown(server)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(workspace: {service.workspace.root or 'ephemeral'})")
    print("endpoints: /healthz /workspace /tables /viewport /sample "
          "/splom /task-quality POST /build /append /compact — "
          "Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Fallback for embedding contexts without the signal handlers.
        pass
    finally:
        received = state.get("signal")
        name = signal.Signals(received).name if received else "interrupt"
        print(f"\nrepro serve: {name} received — finishing in-flight "
              "requests")
        server.server_close()
        service.close()
        print("repro serve: workspace closed, bye")
