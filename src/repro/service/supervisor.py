"""``repro serve --workers N``: one listen socket, N serving processes.

A single :class:`~repro.service.http.GracefulHTTPServer` is
thread-per-request but GIL-bound: ~1 ms cache reads serialise on JSON
encoding and tile slicing, so one process tops out near one core no
matter how many clients connect.  The supervisor here is the smallest
thing that scales that out on one host:

* bind the listen socket **once** in the parent, then ``fork()`` N
  workers that inherit it — all workers share one kernel accept queue,
  so crashed or busy workers never strand connections and no port
  juggling or proxy is involved;
* each worker is a *full* read-serving process (its own
  :class:`~repro.service.service.VasService`, caches, GIL), built by a
  ``make_service`` factory called **after** the fork so nothing decoded
  is ever shared or copy-on-write-bloated;
* the supervisor restarts crashed workers under a restart budget, and
  fans SIGTERM/SIGINT out so every worker drains its in-flight
  requests before the parent exits 0 — the same graceful contract as
  single-process ``repro serve``.

Leaders and followers both run under it: workers only coordinate
through the workspace directory, exactly like separate processes on a
shared disk (which is what they are).
"""

from __future__ import annotations

import os
import signal
import socket
import sys

from ..errors import ConfigurationError
from .http import adopt_socket_server, install_graceful_shutdown

__all__ = ["serve_forked", "DEFAULT_RESTART_BUDGET"]

#: Lifetime cap on worker restarts: enough to ride out sporadic
#: crashes, small enough that a worker dying in a loop (bad workspace,
#: OOM) turns into a visible supervisor exit instead of a busy-loop.
DEFAULT_RESTART_BUDGET = 16


def _describe_exit(status: int) -> str:
    if os.WIFSIGNALED(status):
        try:
            name = signal.Signals(os.WTERMSIG(status)).name
        except ValueError:
            name = f"signal {os.WTERMSIG(status)}"
        return f"killed by {name}"
    if os.WIFEXITED(status):
        return f"exit status {os.WEXITSTATUS(status)}"
    return f"wait status {status}"


def _worker_main(make_service, sock, index: int, workers: int,
                 verbose: bool) -> int:
    """Everything a worker does between fork and ``os._exit``."""
    # Drop the inherited supervisor handlers (they forward signals to
    # the worker pool — a worker must never do that) before installing
    # this process's own graceful shutdown.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    service = make_service()
    server = adopt_socket_server(service, sock, verbose=verbose,
                                 workers=workers)
    state = install_graceful_shutdown(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        received = state.get("signal")
        name = (signal.Signals(received).name if received
                else "interrupt")
        print(f"repro serve: worker {index} {name} received — drained, "
              "bye")
    return 0


def serve_forked(make_service, host: str = "127.0.0.1", port: int = 8000,
                 workers: int = 2, verbose: bool = False,
                 restart_budget: int = DEFAULT_RESTART_BUDGET) -> int:
    """Run ``workers`` forked serving processes on one bound socket.

    ``make_service`` is a zero-argument factory returning a fresh
    :class:`~repro.service.service.VasService`; it runs inside each
    worker after the fork.  Returns the supervisor's exit code: 0 for
    a signal-initiated graceful shutdown, 1 when the restart budget
    runs out.
    """
    if workers < 1:
        raise ConfigurationError(f"--workers must be >= 1, got {workers}")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    bound_host, bound_port = sock.getsockname()[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"({workers} workers, shared socket)")

    children: dict[int, int] = {}  # pid -> worker index
    shutting_down = False

    def fan_out(signum, frame):
        nonlocal shutting_down
        shutting_down = True
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, fan_out)
    signal.signal(signal.SIGINT, fan_out)

    def spawn(index: int) -> None:
        # Flush before fork: buffered bytes would otherwise be
        # duplicated into every worker's stdio.
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                status = _worker_main(make_service, sock, index,
                                      workers, verbose)
            finally:
                # Never fall back into the supervisor loop from a
                # worker — and skip atexit/finalizers that belong to
                # the parent.
                try:
                    sys.stdout.flush()
                    sys.stderr.flush()
                finally:
                    os._exit(status)
        children[pid] = index
        print(f"repro serve: worker {index} started (pid {pid})")
        sys.stdout.flush()

    for index in range(workers):
        spawn(index)

    restarts = 0
    exit_code = 0
    while children:
        try:
            pid, status = os.waitpid(-1, 0)
        except ChildProcessError:
            children.clear()
            break
        except InterruptedError:  # pragma: no cover - PEP 475 retries
            continue
        index = children.pop(pid, None)
        if index is None:
            continue
        if shutting_down:
            continue
        detail = _describe_exit(status)
        if restarts >= restart_budget:
            print(f"repro serve: worker {index} (pid {pid}) died "
                  f"({detail}); restart budget exhausted — shutting down")
            sys.stdout.flush()
            exit_code = 1
            fan_out(None, None)
            continue
        restarts += 1
        print(f"repro serve: worker {index} (pid {pid}) died ({detail}) "
              f"— restarting ({restarts}/{restart_budget})")
        spawn(index)
    sock.close()
    print("repro serve: all workers drained, bye")
    return exit_code
