"""Journal-shipping follower replicas: read-only scale-out over shared disk.

The PR 5 storage layer already did the hard part of replication
without meaning to:

* every append is one durable line in ``journal.jsonl``, written
  *after* its segment files — so a reader that tails the journal
  (:func:`~repro.storage.persist.load_table_manifest` folds it in)
  always sees a version whose data is on disk;
* every built artifact is immutable and content-addressed under
  ``cache/`` — a follower can serve a tile or sample rung it found in
  a scan forever, with zero coordination;
* manifests are replaced atomically (tmp + ``os.replace``), so a
  compaction on the leader never exposes a torn manifest.

:class:`FollowerWorkspace` therefore *is* the replica: it opens the
leader's directory read-only and re-polls the per-table fingerprints
(manifest stat + journal size) at most every ``poll_interval``
seconds, dropping its memoised history/hash/column/decoded-table
entries for any table that moved.  Between polls it serves the old
version; after a poll it serves the new one — the same old-or-new
contract an in-process reader gets from the epoch guard, enforced
here by content-hash-keyed caches that simply never mix versions.

Mutations raise :class:`~repro.errors.ReadOnlyError` naming the
leader; the HTTP layer maps that to the stable ``read_only`` error
code (503).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from ..errors import ConfigurationError, ReadOnlyError, StorageError
from ..storage.persist import JOURNAL_NAME, load_table_manifest
from .workspace import Workspace

__all__ = ["FollowerWorkspace"]


class FollowerWorkspace(Workspace):
    """A read-only :class:`Workspace` tailing a leader's directory.

    ``poll_interval`` bounds staleness: each read path checks the
    cheap per-table fingerprints at most once per interval (``0``
    re-checks on every read — handy in tests).  :meth:`refresh`
    forces a re-poll; the service's retry loops call it through
    :meth:`reader_refresh` when a racing leader prune invalidates a
    resolved artifact mid-read.
    """

    read_only = True

    def __init__(self, leader_root: str | Path,
                 poll_interval: float = 1.0) -> None:
        interval = float(poll_interval)
        if interval < 0:
            raise ConfigurationError(
                f"poll_interval must be >= 0, got {poll_interval}")
        # Resolve before opening: ReadOnlyError messages name this
        # root, and a relative "ws" means nothing to a remote client.
        super().__init__(Path(leader_root).resolve(), create=False)
        self.poll_interval = interval
        self._refresh_lock = threading.Lock()
        # name -> (manifest mtime_ns, manifest size, journal size);
        # journal size -1 means "no journal file".
        self._fingerprints: dict[str, tuple[int, int, int]] = {}
        # name -> table version as of the last fingerprint sweep —
        # what "the version this follower serves" means before any
        # read has memoised a history (lag() reads this).
        self._synced_versions: dict[str, int] = {}
        self._checked_monotonic = float("-inf")
        self._refreshed_unix = time.time()
        self.refresh()

    # -- polling -----------------------------------------------------------
    def _fingerprint(self, name: str) -> tuple[int, int, int] | None:
        table_dir = self._tables_dir / name
        try:
            manifest = (table_dir / "manifest.json").stat()
        except OSError:
            return None
        try:
            journal_size = (table_dir / JOURNAL_NAME).stat().st_size
        except OSError:
            journal_size = -1
        return (manifest.st_mtime_ns, manifest.st_size, journal_size)

    def _disk_table_names(self) -> set[str]:
        if not self._tables_dir.is_dir():
            return set()
        return {p.name for p in self._tables_dir.iterdir()
                if (p / "manifest.json").is_file()}

    def refresh(self) -> list[str]:
        """Force a fingerprint re-poll; the names whose state changed.

        For each changed (or dropped) table every memoised view —
        version history, content hash, column metadata, the decoded
        table — is evicted, so the next read re-reads
        ``manifest ⊕ journal`` from the leader's disk.  Build
        manifests need no eviction: :meth:`~Workspace.builds` scans
        ``cache/`` fresh on every call, gated by the (now fresh)
        version history.
        """
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> list[str]:
        changed = []
        disk_names = self._disk_table_names()
        for name in disk_names:
            fingerprint = self._fingerprint(name)
            if self._fingerprints.get(name) == fingerprint:
                continue
            self._fingerprints[name] = fingerprint
            changed.append(name)
        for name in set(self._fingerprints) - disk_names:
            del self._fingerprints[name]
            self._synced_versions.pop(name, None)
            changed.append(name)
        for name in changed:
            self._tables.pop(name, None)
            self._hashes.pop(name, None)
            self._columns.pop(name, None)
            self._versions.pop(name, None)
            if name in disk_names:
                try:
                    manifest = load_table_manifest(self._tables_dir / name)
                except StorageError:
                    continue
                self._synced_versions[name] = int(
                    manifest.get("version", 0))
        self._checked_monotonic = time.monotonic()
        self._refreshed_unix = time.time()
        return changed

    def maybe_refresh(self) -> None:
        """Re-poll if the interval elapsed; never block behind a
        refresh another thread is already running."""
        if time.monotonic() - self._checked_monotonic < self.poll_interval:
            return
        if self._refresh_lock.acquire(blocking=False):
            try:
                self._refresh_locked()
            finally:
                self._refresh_lock.release()

    def reader_refresh(self) -> None:
        self.refresh()

    def lag(self) -> dict:
        """``{"versions", "seconds"}`` behind the leader's disk state.

        ``versions`` compares the memoised history against a *fresh*
        ``manifest ⊕ journal`` read per table (this is a health-check
        path, not a hot path); ``seconds`` is the age of the last
        fingerprint sweep — a load balancer alarms when it stops
        tracking ``poll_interval``.
        """
        versions = 0
        for name in self._disk_table_names():
            try:
                manifest = load_table_manifest(self._tables_dir / name)
            except StorageError:
                continue
            disk_version = int(manifest.get("version", 0))
            served_version = self._synced_versions.get(name)
            history = self._versions.get(name)
            if history:
                # A read since the sweep memoised a fresher history.
                served_version = max(served_version or 0,
                                     int(history[-1]["version"]))
            if served_version is None:
                served_version = disk_version
            versions = max(versions, disk_version - served_version)
        seconds = max(0.0, time.time() - self._refreshed_unix)
        return {"versions": versions, "seconds": round(seconds, 3)}

    # -- read paths: poll, then behave like any workspace ------------------
    def table(self, name: str):
        self.maybe_refresh()
        return super().table(name)

    def table_hash(self, name: str) -> str:
        self.maybe_refresh()
        return super().table_hash(name)

    def table_columns(self, name: str):
        self.maybe_refresh()
        return super().table_columns(name)

    def table_info(self, name: str):
        self.maybe_refresh()
        return super().table_info(name)

    def table_summary(self, name: str):
        self.maybe_refresh()
        return super().table_summary(name)

    def version_history(self, name: str):
        self.maybe_refresh()
        return super().version_history(name)

    def builds(self, kind: str | None = None, table: str | None = None):
        self.maybe_refresh()
        return super().builds(kind=kind, table=table)

    # -- mutations: always refused -----------------------------------------
    def add_table(self, table, replace: bool = False) -> str:
        raise ReadOnlyError("ingest", str(self.root))

    def append_rows(self, name: str, arrays) -> dict:
        raise ReadOnlyError("append", str(self.root))

    def compact_table(self, name: str, keep_hashes=None) -> dict:
        raise ReadOnlyError("compact", str(self.root))
