"""Uniform grid index over 2-D points.

The grid index bins points into equally sized rectangular cells.  It
supports three operations the rest of the package needs:

* ``query_radius`` — ids of points within a Euclidean radius of a probe
  (used by the ES+Loc Interchange strategy and by the Monte-Carlo loss
  domain test);
* ``query_bbox`` — ids of points inside a rectangle (used by zooming);
* ``cell_counts`` — per-cell population (used by the stratified
  sampler and the density-estimation task).

The index is dynamic: points can be added one at a time (the streaming
Interchange inserts and removes candidate sample points as it scans)
and removed by id.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from ..errors import ConfigurationError
from ..geometry import as_points


class GridIndex:
    """A uniform-cell spatial hash for 2-D points.

    Parameters
    ----------
    cell_size:
        Edge length of each square cell.  Queries of radius ``r`` probe
        ``ceil(r / cell_size)`` rings of neighbouring cells, so the cell
        size should be of the same order as the typical query radius.
    """

    def __init__(self, cell_size: float) -> None:
        if not (cell_size > 0) or not math.isfinite(cell_size):
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], dict[int, tuple[float, float]]] = (
            defaultdict(dict)
        )
        self._locations: dict[int, tuple[int, int]] = {}
        # Per-cell (ids, points) arrays in dict insertion order, built
        # lazily by the vectorised bbox walk and invalidated per cell
        # on mutation — a streaming Interchange that inserts/removes
        # only ever dirties the cells it touches.
        self._frozen: dict[tuple[int, int],
                           tuple[np.ndarray, np.ndarray]] = {}

    # -- bookkeeping -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._locations

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self.cell_size)),
                int(math.floor(y / self.cell_size)))

    def key_of(self, x: float, y: float) -> tuple[int, int]:
        """Cell coordinates of a point (the bucketing function).

        Exposed so vectorised callers (the pruned Interchange screen
        computes ``floor(xy / cell_size)`` for whole blocks at once)
        can assert their keys match the index's own bucketing.
        """
        return self._key(x, y)

    # -- mutation ----------------------------------------------------------
    def insert(self, point_id: int, x: float, y: float) -> None:
        """Insert a point under ``point_id``; the id must be fresh."""
        if point_id in self._locations:
            raise ConfigurationError(f"duplicate point id: {point_id}")
        key = self._key(x, y)
        self._cells[key][point_id] = (float(x), float(y))
        self._locations[point_id] = key
        self._frozen.pop(key, None)

    def insert_many(self, ids: np.ndarray, points: np.ndarray) -> None:
        """Bulk-insert ``points[i]`` under ``ids[i]``."""
        pts = as_points(points)
        if len(ids) != len(pts):
            raise ConfigurationError(
                f"ids/points length mismatch: {len(ids)} vs {len(pts)}"
            )
        for pid, (x, y) in zip(ids, pts):
            self.insert(int(pid), float(x), float(y))

    def remove(self, point_id: int) -> None:
        """Remove a point by id; raises ``KeyError`` if absent."""
        key = self._locations.pop(point_id)
        cell = self._cells[key]
        del cell[point_id]
        self._frozen.pop(key, None)
        if not cell:
            del self._cells[key]

    # -- queries -----------------------------------------------------------
    def query_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Ids of points with ``‖p - (x,y)‖ <= radius``."""
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._key(x, y)
        r2 = radius * radius
        hits: list[int] = []
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                cell = self._cells.get((ix, iy))
                if not cell:
                    continue
                for pid, (px, py) in cell.items():
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        hits.append(pid)
        return hits

    def neighborhood_ids(self, cx: int, cy: int, reach: int = 1) -> list[int]:
        """Ids in the ``(2·reach+1)²`` block of cells centred on a cell.

        The coarse companion of :meth:`query_radius`: with
        ``cell_size >= r`` and ``reach=1``, every point within distance
        ``r`` of *any* probe in cell ``(cx, cy)`` is returned (a
        coordinate difference of at most ``r`` moves the cell index by
        at most one), while omitted points are guaranteed farther than
        ``r`` from every such probe.  The locality-pruned Interchange
        screen uses this as its candidate gather: omitted members
        contribute bit-exact kernel zeros and are skipped wholesale.
        """
        hits: list[int] = []
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                cell = self._cells.get((ix, iy))
                if cell:
                    hits.extend(cell.keys())
        return hits

    def count_within_radius(self, x: float, y: float, radius: float) -> int:
        """Cheaper variant of :meth:`query_radius` returning only a count."""
        return len(self.query_radius(x, y, radius))

    def any_within_radius(self, x: float, y: float, radius: float) -> bool:
        """True as soon as one point lies within ``radius`` of the probe.

        Short-circuits, which makes the Monte-Carlo loss domain test
        (``is this random point inside the data region?``) fast.
        """
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._key(x, y)
        r2 = radius * radius
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                cell = self._cells.get((ix, iy))
                if not cell:
                    continue
                for px, py in cell.values():
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        return True
        return False

    def _cell_arrays(self, key: tuple[int, int]
                     ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(ids, (n, 2) points)`` for one cell, in insertion order."""
        frozen = self._frozen.get(key)
        if frozen is None:
            cell = self._cells.get(key)
            if not cell:
                return None
            ids = np.fromiter(cell.keys(), dtype=np.int64, count=len(cell))
            pts = np.array(list(cell.values()), dtype=np.float64)
            frozen = (ids, pts)
            self._frozen[key] = frozen
        return frozen

    def query_bbox(self, xmin: float, ymin: float,
                   xmax: float, ymax: float,
                   point_mask=None) -> list[int]:
        """Ids of points inside the closed rectangle.

        ``point_mask`` is an optional filter pushed into the cell walk:
        a callable taking one cell's ``(n, 2)`` coordinate array and
        returning a boolean keep-mask, evaluated per cell alongside the
        bounds test (so a viewport query filters during the probe, not
        on the assembled result).  Hit order is cell-major (x outer, y
        inner) with insertion order inside each cell.
        """
        if xmin > xmax or ymin > ymax:
            raise ConfigurationError("inverted query rectangle")
        kx0, ky0 = self._key(xmin, ymin)
        kx1, ky1 = self._key(xmax, ymax)
        hits: list[int] = []
        for ix in range(kx0, kx1 + 1):
            for iy in range(ky0, ky1 + 1):
                arrays = self._cell_arrays((ix, iy))
                if arrays is None:
                    continue
                ids, pts = arrays
                keep = ((pts[:, 0] >= xmin) & (pts[:, 0] <= xmax)
                        & (pts[:, 1] >= ymin) & (pts[:, 1] <= ymax))
                if point_mask is not None:
                    keep &= np.asarray(point_mask(pts), dtype=bool)
                hits.extend(ids[keep].tolist())
        return hits

    def points_of(self, ids: list[int]) -> np.ndarray:
        """Coordinates for the given ids as an ``(len(ids), 2)`` array."""
        out = np.empty((len(ids), 2), dtype=np.float64)
        for row, pid in enumerate(ids):
            key = self._locations[pid]
            out[row] = self._cells[key][pid]
        return out

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Population of every non-empty cell, keyed by cell coordinates."""
        return {key: len(cell) for key, cell in self._cells.items()}


def choose_cell_size(points: np.ndarray, target_per_cell: float = 8.0) -> float:
    """Pick a cell size so the average occupied cell holds ``target_per_cell``.

    A heuristic for building a :class:`GridIndex` over a static dataset:
    with N points spread over the bounding-box area A, a cell edge of
    ``sqrt(A * target / N)`` yields roughly ``target`` points per cell.
    """
    pts = as_points(points)
    if len(pts) == 0:
        raise ConfigurationError("cannot size a grid for an empty dataset")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    width = max(hi[0] - lo[0], 1e-12)
    height = max(hi[1] - lo[1], 1e-12)
    area = width * height
    edge = math.sqrt(area * target_per_cell / max(len(pts), 1))
    return max(edge, 1e-12)
