"""An R-tree over 2-D points, built from scratch.

The paper accelerates the Expand/Shrink inner loop of Interchange by
exploiting kernel locality: when a new tuple arrives, only sample
points within a cutoff radius contribute non-negligible kernel mass,
and "for a proximity check, our implementation used R-tree" (§IV-B).
The candidate sample set mutates constantly (one insert and one delete
per accepted replacement), so this R-tree is fully dynamic:

* Guttman-style insertion with quadratic node split;
* deletion with tree condensation and re-insertion of orphans;
* radius and rectangle queries;
* best-first nearest-neighbour search;
* an STR (sort-tile-recursive) bulk loader for static datasets.

Entries are ``(point_id, x, y)``; ids are caller-chosen and unique.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from ..errors import ConfigurationError
from ..geometry import as_points
from .bbox import BBox


class _Node:
    """One R-tree node; leaves hold point entries, internals hold children."""

    __slots__ = ("leaf", "entries", "children", "bbox", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: list[tuple[int, float, float]] = []  # leaves only
        self.children: list["_Node"] = []                  # internals only
        self.bbox: BBox | None = None
        self.parent: "_Node | None" = None

    def recompute_bbox(self) -> None:
        if self.leaf:
            if not self.entries:
                self.bbox = None
                return
            xs = [e[1] for e in self.entries]
            ys = [e[2] for e in self.entries]
            self.bbox = BBox(min(xs), min(ys), max(xs), max(ys))
        else:
            boxes = [c.bbox for c in self.children if c.bbox is not None]
            self.bbox = BBox.union_all(boxes) if boxes else None


class RTree:
    """Dynamic 2-D R-tree keyed by integer point ids.

    Parameters
    ----------
    max_entries:
        Node capacity M; a node splits when it would exceed this.
    min_entries:
        Minimum fill m (default ``ceil(M * 0.4)``); a node underflows
        and is condensed when it drops below this.
    """

    def __init__(self, max_entries: int = 16, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise ConfigurationError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = int(max_entries)
        self.min_entries = (int(min_entries) if min_entries is not None
                            else max(2, math.ceil(max_entries * 0.4)))
        if not (2 <= self.min_entries <= self.max_entries // 2):
            raise ConfigurationError(
                f"min_entries must be in [2, max_entries/2], got {self.min_entries}"
            )
        self._root = _Node(leaf=True)
        self._size = 0
        self._ids: set[int] = set()

    def __len__(self) -> int:
        return self._size

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._ids

    # -- bulk load ---------------------------------------------------------
    @classmethod
    def bulk_load(cls, ids: np.ndarray, points: np.ndarray,
                  max_entries: int = 16) -> "RTree":
        """Build a packed tree with sort-tile-recursive (STR) loading.

        STR sorts points by x, slices them into vertical strips of
        ``ceil(sqrt(N / M))`` columns, sorts each strip by y, and packs
        runs of M points into leaves; the process repeats one level up
        until a single root remains.
        """
        pts = as_points(points)
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(pts):
            raise ConfigurationError(
                f"ids/points length mismatch: {len(ids)} vs {len(pts)}"
            )
        tree = cls(max_entries=max_entries)
        if len(pts) == 0:
            return tree
        if len(set(ids.tolist())) != len(ids):
            raise ConfigurationError("bulk_load ids must be unique")

        m = tree.max_entries
        order = np.argsort(pts[:, 0], kind="stable")
        leaf_count = math.ceil(len(pts) / m)
        strip_count = max(1, math.ceil(math.sqrt(leaf_count)))
        per_strip = math.ceil(len(pts) / strip_count)

        leaves: list[_Node] = []
        for s in range(strip_count):
            strip = order[s * per_strip:(s + 1) * per_strip]
            if len(strip) == 0:
                continue
            strip = strip[np.argsort(pts[strip, 1], kind="stable")]
            for start in range(0, len(strip), m):
                run = strip[start:start + m]
                node = _Node(leaf=True)
                node.entries = [
                    (int(ids[i]), float(pts[i, 0]), float(pts[i, 1])) for i in run
                ]
                node.recompute_bbox()
                leaves.append(node)

        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), m):
                parent = _Node(leaf=False)
                parent.children = level[start:start + m]
                for child in parent.children:
                    child.parent = parent
                parent.recompute_bbox()
                parents.append(parent)
            level = parents

        tree._root = level[0]
        tree._size = len(pts)
        tree._ids = set(int(i) for i in ids)
        return tree

    # -- insertion ---------------------------------------------------------
    def insert(self, point_id: int, x: float, y: float) -> None:
        """Insert ``(x, y)`` under a fresh ``point_id``."""
        if point_id in self._ids:
            raise ConfigurationError(f"duplicate point id: {point_id}")
        self._ids.add(point_id)
        self._size += 1
        self._insert_entry((int(point_id), float(x), float(y)))

    def _insert_entry(self, entry: tuple[int, float, float]) -> None:
        leaf = self._choose_leaf(self._root, entry[1], entry[2])
        leaf.entries.append(entry)
        self._adjust_upward(leaf)

    def _choose_leaf(self, node: _Node, x: float, y: float) -> _Node:
        while not node.leaf:
            probe = BBox.from_point(x, y)
            best = None
            best_key: tuple[float, float] | None = None
            for child in node.children:
                assert child.bbox is not None
                key = (child.bbox.enlargement(probe), child.bbox.area)
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            assert best is not None
            node = best
        return node

    def _adjust_upward(self, node: _Node) -> None:
        """Recompute boxes and split overfull nodes up to the root."""
        while node is not None:
            node.recompute_bbox()
            overfull = (len(node.entries) if node.leaf
                        else len(node.children)) > self.max_entries
            if overfull:
                self._split(node)
                # _split reattaches both halves; restart from the parent,
                # which recompute happens on the next loop iteration.
                node = node.parent if node.parent is not None else None
                continue
            node = node.parent
        # Root bbox may still be stale when no split occurred at the top.
        self._root.recompute_bbox()

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overfull node (Guttman 1984)."""
        items: list
        boxes: list[BBox]
        if node.leaf:
            items = node.entries
            boxes = [BBox.from_point(e[1], e[2]) for e in items]
        else:
            items = node.children
            boxes = [c.bbox for c in items]  # type: ignore[misc]

        # Pick the pair of seeds wasting the most area together.
        worst = -1.0
        seed_a, seed_b = 0, 1
        for i, j in itertools.combinations(range(len(items)), 2):
            waste = boxes[i].union(boxes[j]).area - boxes[i].area - boxes[j].area
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

        group_a = [seed_a]
        group_b = [seed_b]
        box_a = boxes[seed_a]
        box_b = boxes[seed_b]
        rest = [k for k in range(len(items)) if k not in (seed_a, seed_b)]
        remaining = len(rest)
        for k in sorted(
            rest,
            key=lambda k: -abs(box_a.enlargement(boxes[k]) - box_b.enlargement(boxes[k])),
        ):
            # Force assignment when one group must take all leftovers to
            # reach minimum fill.
            if len(group_a) + remaining <= self.min_entries:
                target = "a"
            elif len(group_b) + remaining <= self.min_entries:
                target = "b"
            else:
                grow_a = box_a.enlargement(boxes[k])
                grow_b = box_b.enlargement(boxes[k])
                if grow_a < grow_b:
                    target = "a"
                elif grow_b < grow_a:
                    target = "b"
                else:
                    target = "a" if box_a.area <= box_b.area else "b"
            if target == "a":
                group_a.append(k)
                box_a = box_a.union(boxes[k])
            else:
                group_b.append(k)
                box_b = box_b.union(boxes[k])
            remaining -= 1

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            all_entries = list(items)
            node.entries = [all_entries[k] for k in group_a]
            sibling.entries = [all_entries[k] for k in group_b]
        else:
            all_children = list(items)
            node.children = [all_children[k] for k in group_a]
            sibling.children = [all_children[k] for k in group_b]
            for child in sibling.children:
                child.parent = sibling
        node.recompute_bbox()
        sibling.recompute_bbox()

        if node.parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_bbox()
            self._root = new_root
        else:
            parent = node.parent
            sibling.parent = parent
            parent.children.append(sibling)
            parent.recompute_bbox()

    # -- deletion ------------------------------------------------------------
    def remove(self, point_id: int, x: float, y: float) -> None:
        """Remove the entry for ``point_id`` located at ``(x, y)``.

        The coordinates guide the search; a ``KeyError`` is raised when
        the id is not present at that location.
        """
        if point_id not in self._ids:
            raise KeyError(point_id)
        leaf = self._find_leaf(self._root, point_id, x, y)
        if leaf is None:
            raise KeyError(point_id)
        leaf.entries = [e for e in leaf.entries if e[0] != point_id]
        self._ids.discard(point_id)
        self._size -= 1
        self._condense(leaf)

    def _find_leaf(self, node: _Node, point_id: int,
                   x: float, y: float) -> _Node | None:
        if node.bbox is None or not node.bbox.contains_point(x, y):
            return None
        if node.leaf:
            for e in node.entries:
                if e[0] == point_id:
                    return node
            return None
        for child in node.children:
            found = self._find_leaf(child, point_id, x, y)
            if found is not None:
                return found
        return None

    def _condense(self, node: _Node) -> None:
        """Remove underfull nodes up the tree; reinsert orphaned entries."""
        orphans: list[tuple[int, float, float]] = []
        while node.parent is not None:
            parent = node.parent
            count = len(node.entries) if node.leaf else len(node.children)
            if count < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_bbox()
            node = parent
        self._root.recompute_bbox()
        # Collapse a root with a single internal child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.leaf and not self._root.children:
            self._root = _Node(leaf=True)
        for entry in orphans:
            self._insert_entry(entry)

    def _collect_entries(self, node: _Node) -> list[tuple[int, float, float]]:
        if node.leaf:
            return list(node.entries)
        out: list[tuple[int, float, float]] = []
        for child in node.children:
            out.extend(self._collect_entries(child))
        return out

    # -- queries ---------------------------------------------------------------
    def query_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Ids of points within Euclidean ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        r2 = radius * radius
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bbox is None or node.bbox.min_sq_dist_to_point(x, y) > r2:
                continue
            if node.leaf:
                for pid, px, py in node.entries:
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        hits.append(pid)
            else:
                stack.extend(node.children)
        return hits

    def query_bbox(self, box: BBox) -> list[int]:
        """Ids of points inside ``box`` (closed boundaries)."""
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bbox is None or not node.bbox.intersects(box):
                continue
            if node.leaf:
                hits.extend(
                    pid for pid, px, py in node.entries
                    if box.contains_point(px, py)
                )
            else:
                stack.extend(node.children)
        return hits

    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """Best-first nearest neighbour: ``(id, distance)``."""
        if self._size == 0:
            raise KeyError("nearest() on an empty RTree")
        counter = itertools.count()  # tie-breaker for the heap
        heap: list[tuple[float, int, object]] = []
        heapq.heappush(heap, (0.0, next(counter), self._root))
        while heap:
            d2, _, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                if item.leaf:
                    for pid, px, py in item.entries:
                        dx = px - x
                        dy = py - y
                        heapq.heappush(heap, (dx * dx + dy * dy, next(counter),
                                              ("point", pid)))
                else:
                    for child in item.children:
                        if child.bbox is not None:
                            heapq.heappush(
                                heap,
                                (child.bbox.min_sq_dist_to_point(x, y),
                                 next(counter), child),
                            )
            else:
                _, pid = item  # type: ignore[misc]
                return int(pid), math.sqrt(d2)
        raise KeyError("nearest() exhausted a non-empty RTree")  # pragma: no cover

    # -- diagnostics -------------------------------------------------------------
    def height(self) -> int:
        """Tree height: 1 for a lone leaf root."""
        h = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self, enforce_min_fill: bool = False) -> None:
        """Raise ``AssertionError`` when structural invariants are violated.

        Always checked: every node's bbox covers its contents, parent
        links are consistent, max fill is respected, and the entry
        count equals ``len(self)``.  ``enforce_min_fill`` additionally
        requires Guttman's minimum fill factor — valid for trees built
        purely by insertion, but STR bulk loading legitimately leaves
        one underfull node per level (the last run of each tiling).
        """
        count = self._check_node(self._root, is_root=True,
                                 enforce_min_fill=enforce_min_fill)
        assert count == self._size, f"size mismatch: {count} != {self._size}"

    def _check_node(self, node: _Node, is_root: bool,
                    enforce_min_fill: bool) -> int:
        if node.leaf:
            if node.entries:
                assert node.bbox is not None
                for pid, px, py in node.entries:
                    assert node.bbox.contains_point(px, py), (
                        f"leaf bbox {node.bbox} misses entry ({px}, {py})"
                    )
            if not is_root:
                if enforce_min_fill:
                    assert len(node.entries) >= self.min_entries, (
                        f"underfull leaf: {len(node.entries)}"
                    )
                assert len(node.entries) <= self.max_entries, (
                    f"overfull leaf: {len(node.entries)}"
                )
            return len(node.entries)
        assert node.children, "internal node with no children"
        if not is_root and enforce_min_fill:
            assert len(node.children) >= self.min_entries, (
                f"underfull internal node: {len(node.children)}"
            )
        assert len(node.children) <= self.max_entries, (
            f"overfull internal node: {len(node.children)}"
        )
        total = 0
        assert node.bbox is not None
        for child in node.children:
            assert child.parent is node, "broken parent link"
            assert child.bbox is not None
            assert node.bbox.contains_box(child.bbox), (
                f"node bbox {node.bbox} misses child bbox {child.bbox}"
            )
            total += self._check_node(child, is_root=False,
                                      enforce_min_fill=enforce_min_fill)
        return total
