"""Axis-aligned bounding rectangles used by the R-tree.

A :class:`BBox` is an immutable 2-D rectangle ``[xmin, xmax] x
[ymin, ymax]``.  Degenerate rectangles (points) are allowed; an
inverted rectangle (min > max) is rejected at construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned 2-D rectangle."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ConfigurationError(
                f"inverted bbox: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_point(cls, x: float, y: float) -> "BBox":
        """A degenerate rectangle covering exactly one point."""
        return cls(x, y, x, y)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BBox":
        """The tight bounds of an ``(N, 2)`` array of points."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.size == 0:
            raise ConfigurationError("cannot bound an empty point set")
        return cls(
            float(pts[:, 0].min()), float(pts[:, 1].min()),
            float(pts[:, 0].max()), float(pts[:, 1].max()),
        )

    @classmethod
    def union_all(cls, boxes: "list[BBox]") -> "BBox":
        """Smallest rectangle containing every box in ``boxes``."""
        if not boxes:
            raise ConfigurationError("cannot union an empty list of boxes")
        return cls(
            min(b.xmin for b in boxes), min(b.ymin for b in boxes),
            max(b.xmax for b in boxes), max(b.ymax for b in boxes),
        )

    # -- geometry --------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def union(self, other: "BBox") -> "BBox":
        """Smallest rectangle containing both ``self`` and ``other``."""
        return BBox(
            min(self.xmin, other.xmin), min(self.ymin, other.ymin),
            max(self.xmax, other.xmax), max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "BBox") -> float:
        """Area growth needed for ``self`` to also cover ``other``."""
        return self.union(other).area - self.area

    def intersects(self, other: "BBox") -> bool:
        """True when the rectangles share at least a boundary point."""
        return not (
            other.xmin > self.xmax or other.xmax < self.xmin
            or other.ymin > self.ymax or other.ymax < self.ymin
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_box(self, other: "BBox") -> bool:
        """True when ``other`` lies completely within ``self``."""
        return (
            self.xmin <= other.xmin and other.xmax <= self.xmax
            and self.ymin <= other.ymin and other.ymax <= self.ymax
        )

    def min_sq_dist_to_point(self, x: float, y: float) -> float:
        """Squared distance from ``(x, y)`` to the nearest point of the box.

        Zero when the point is inside.  This is the classic MINDIST used
        for best-first nearest-neighbour search over R-trees.
        """
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return dx * dx + dy * dy

    def expanded(self, margin: float) -> "BBox":
        """A copy grown by ``margin`` on every side (``margin >= 0``)."""
        if margin < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin}")
        return BBox(self.xmin - margin, self.ymin - margin,
                    self.xmax + margin, self.ymax + margin)

    def diagonal(self) -> float:
        """Length of the rectangle's diagonal."""
        return math.hypot(self.width, self.height)
