"""Spatial index substrate: grid, k-d tree and R-tree, all from scratch.

These structures back three parts of the reproduction:

* :class:`GridIndex` — constant-time neighbourhood probes for the
  Monte-Carlo loss domain test and a lightweight ES+Loc alternative;
* :class:`KDTree` — nearest-neighbour search for the density-embedding
  second pass (§V of the paper);
* :class:`RTree` — the dynamic proximity index the paper uses to
  accelerate Expand/Shrink via kernel locality (§IV-B).
"""

from .bbox import BBox
from .grid import GridIndex, choose_cell_size
from .kdtree import KDTree
from .rtree import RTree

__all__ = ["BBox", "GridIndex", "KDTree", "RTree", "choose_cell_size"]
