"""A k-d tree over 2-D points, built from scratch.

The paper's density-embedding pass (§V) attaches a counter to every
sampled point and, while re-scanning the dataset, increments the
counter of the *nearest* sampled point.  It notes that a k-d tree makes
each nearest-neighbour test ``O(log K)``.  This module provides that
structure: a static, median-split k-d tree with nearest-neighbour,
k-nearest-neighbour and radius queries.

The tree is array-based (no per-node Python objects for the points):
``_index`` stores a permutation of input row ids, and each internal
node records its split dimension/value and child slots.  Queries use an
explicit stack rather than recursion so deep trees cannot hit the
interpreter recursion limit.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import ConfigurationError, EmptyDatasetError
from ..geometry import as_points

_LEAF_SIZE = 16


class KDTree:
    """Static 2-D k-d tree supporting NN / kNN / radius queries.

    Parameters
    ----------
    points:
        ``(N, 2)`` array.  The tree stores a copy; query results refer
        to row indices of this array.
    leaf_size:
        Maximum number of points per leaf before splitting stops.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        pts = as_points(points)
        if len(pts) == 0:
            raise EmptyDatasetError("KDTree requires at least one point")
        if pts.shape[1] != 2:
            raise ConfigurationError(
                f"KDTree supports 2-D points, got dimension {pts.shape[1]}"
            )
        if leaf_size < 1:
            raise ConfigurationError(f"leaf_size must be >= 1, got {leaf_size}")
        self._points = pts.copy()
        self._leaf_size = int(leaf_size)
        self._index = np.arange(len(pts), dtype=np.int64)
        # Node arrays, grown as the tree is built.  A node is a leaf when
        # split_dim == -1; then [start, end) indexes into self._index.
        self._split_dim: list[int] = []
        self._split_val: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []
        self._root = self._build(0, len(pts))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The (copied) point array the tree was built over."""
        return self._points

    # -- construction ------------------------------------------------------
    def _new_node(self) -> int:
        self._split_dim.append(-1)
        self._split_val.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._start.append(0)
        self._end.append(0)
        return len(self._split_dim) - 1

    def _build(self, start: int, end: int) -> int:
        """Build the subtree over ``self._index[start:end]``; return node id."""
        node = self._new_node()
        count = end - start
        if count <= self._leaf_size:
            self._start[node] = start
            self._end[node] = end
            return node
        ids = self._index[start:end]
        block = self._points[ids]
        # Split the wider dimension at its median for balanced depth.
        spans = block.max(axis=0) - block.min(axis=0)
        dim = int(np.argmax(spans))
        order = np.argsort(block[:, dim], kind="stable")
        self._index[start:end] = ids[order]
        mid = start + count // 2
        split_val = float(self._points[self._index[mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        left = self._build(start, mid)
        right = self._build(mid, end)
        self._left[node] = left
        self._right[node] = right
        return node

    # -- queries -------------------------------------------------------------
    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """Row id and distance of the nearest stored point to ``(x, y)``."""
        idx, dist = self.k_nearest(x, y, 1)
        return int(idx[0]), float(dist[0])

    def k_nearest(self, x: float, y: float, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest stored points to ``(x, y)``.

        Returns ``(ids, dists)`` sorted by increasing distance.  ``k``
        is clamped to the tree size.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        k = min(k, len(self._points))
        q = np.array([x, y], dtype=np.float64)
        # Max-heap of (-dist2, id) holding current best k.
        best: list[tuple[float, int]] = []
        # Stack of (node, min possible dist2 to node region).
        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, min_d2 = stack.pop()
            if len(best) == k and min_d2 >= -best[0][0]:
                continue
            dim = self._split_dim[node]
            if dim == -1:  # leaf
                ids = self._index[self._start[node]:self._end[node]]
                diffs = self._points[ids] - q[None, :]
                d2s = np.einsum("ij,ij->i", diffs, diffs)
                for pid, d2 in zip(ids, d2s):
                    if len(best) < k:
                        heapq.heappush(best, (-float(d2), int(pid)))
                    elif d2 < -best[0][0]:
                        heapq.heapreplace(best, (-float(d2), int(pid)))
                continue
            split = self._split_val[node]
            delta = q[dim] - split
            near, far = ((self._left[node], self._right[node]) if delta < 0
                         else (self._right[node], self._left[node]))
            far_d2 = max(min_d2, delta * delta)
            stack.append((far, far_d2))
            stack.append((near, min_d2))
        best.sort(key=lambda t: -t[0])
        ids_arr = np.array([pid for _, pid in best], dtype=np.int64)
        dists = np.sqrt(np.array([-d2 for d2, _ in best], dtype=np.float64))
        return ids_arr, dists

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Row ids of stored points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        q = np.array([x, y], dtype=np.float64)
        r2 = radius * radius
        hits: list[int] = []
        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, min_d2 = stack.pop()
            if min_d2 > r2:
                continue
            dim = self._split_dim[node]
            if dim == -1:
                ids = self._index[self._start[node]:self._end[node]]
                diffs = self._points[ids] - q[None, :]
                d2s = np.einsum("ij,ij->i", diffs, diffs)
                hits.extend(int(pid) for pid, d2 in zip(ids, d2s) if d2 <= r2)
                continue
            split = self._split_val[node]
            delta = q[dim] - split
            near, far = ((self._left[node], self._right[node]) if delta < 0
                         else (self._right[node], self._left[node]))
            stack.append((near, min_d2))
            stack.append((far, max(min_d2, delta * delta)))
        return np.array(sorted(hits), dtype=np.int64)

    def nearest_ids(self, queries: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`nearest`: nearest row id per query row.

        This is the work-horse of the density-embedding second pass:
        the dataset is streamed through in chunks, and each chunk is
        assigned to its nearest sample point.
        """
        qs = as_points(queries)
        out = np.empty(len(qs), dtype=np.int64)
        for i, (x, y) in enumerate(qs):
            out[i] = self.nearest(float(x), float(y))[0]
        return out
