"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-hierarchy mirrors the package layout: sampling, storage, index,
visualization and experiment errors each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed or invoked with invalid parameters."""


class SamplingError(ReproError):
    """Base class for sampler failures."""


class SampleSizeError(SamplingError):
    """Requested sample size is invalid (non-positive or > population)."""

    def __init__(self, requested: int, available: int | None = None) -> None:
        self.requested = requested
        self.available = available
        if available is None:
            message = f"invalid sample size: {requested}"
        else:
            message = (
                f"invalid sample size: requested {requested}, "
                f"but only {available} rows are available"
            )
        super().__init__(message)


class EmptyDatasetError(SamplingError):
    """An operation that needs at least one data point received none."""


class StorageError(ReproError):
    """Base class for the mini column-store errors."""


class SchemaError(StorageError):
    """Schema mismatch: unknown column, wrong dtype, or wrong arity."""


class TableNotFoundError(StorageError):
    """A named table does not exist in the :class:`~repro.storage.Database`."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"table not found: {name!r}")


class SampleNotFoundError(StorageError):
    """No pre-built sample satisfies the requested constraints."""


class ReadOnlyError(StorageError):
    """A mutation was attempted on a read-only (follower) workspace."""

    def __init__(self, operation: str, leader: str) -> None:
        self.operation = operation
        self.leader = leader
        super().__init__(
            f"{operation} is not available on a follower replica; this "
            f"process serves reads only. Mutate the leader workspace at "
            f"{leader} instead."
        )


class IndexError_(ReproError):
    """Base class for spatial-index errors (named to avoid shadowing)."""


class VisualizationError(ReproError):
    """Base class for rendering failures."""


class CanvasSizeError(VisualizationError):
    """A canvas was requested with non-positive width or height."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
