"""Latency substrate: timers and visualization-time cost models."""

from .cost_model import (
    INTERACTIVE_LIMIT_SECONDS,
    LinearCostModel,
    MATHGL_LIKE,
    TABLEAU_LIKE,
    fit_linear_model,
    measure_renderer,
)
from .timer import Timer, TimingResult, time_callable

__all__ = [
    "INTERACTIVE_LIMIT_SECONDS",
    "LinearCostModel",
    "MATHGL_LIKE",
    "TABLEAU_LIKE",
    "Timer",
    "TimingResult",
    "fit_linear_model",
    "measure_renderer",
    "time_callable",
]
