"""Visualization-latency cost models (Fig 2 and Fig 4 substrate).

The paper's premise is that scatter-plot production time is **linear in
the number of rendered points** (Fig 2/4 show this for Tableau and
MathGL).  We cannot run those products offline, so this module provides

* :class:`LinearCostModel` — ``time(n) = overhead + rate · n``;
* calibrated constants for a *Tableau-like* and a *MathGL-like* system,
  back-solved from the paper's published readings (Tableau: > 4 minutes
  at 50M in-memory tuples, ~7 s at 1M; MathGL: ~2 s at 1M including SSD
  load — both crossing the 2-second interactive limit by 1M points);
* :func:`fit_linear_model` — least-squares calibration from measured
  (size, seconds) pairs, used to fit a model to *our own* renderer so
  the Fig 2/4 reproductions report a measured system next to the two
  calibrated ones;
* :func:`measure_renderer` — time :class:`~repro.viz.ScatterRenderer`
  on synthetic point sets of growing size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator
from ..viz.scatter import ScatterRenderer, Viewport
from .timer import time_callable

#: HCI interactive-latency limit cited throughout the paper (seconds).
INTERACTIVE_LIMIT_SECONDS = 2.0


@dataclass(frozen=True)
class LinearCostModel:
    """``predict(n) = overhead_seconds + seconds_per_point * n``."""

    name: str
    seconds_per_point: float
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds_per_point <= 0:
            raise ConfigurationError(
                f"seconds_per_point must be positive, got {self.seconds_per_point}"
            )
        if self.overhead_seconds < 0:
            raise ConfigurationError(
                f"overhead_seconds must be >= 0, got {self.overhead_seconds}"
            )

    def predict(self, n_points: int | np.ndarray) -> np.ndarray | float:
        """Predicted seconds to visualize ``n_points``."""
        return self.overhead_seconds + self.seconds_per_point * np.asarray(
            n_points, dtype=np.float64
        )

    def points_within(self, time_budget_seconds: float) -> int:
        """Largest point count whose prediction fits the budget."""
        if time_budget_seconds <= self.overhead_seconds:
            return 0
        return int(
            (time_budget_seconds - self.overhead_seconds) / self.seconds_per_point
        )


#: Back-solved from Fig 2/4: >4 min at 50M (in-memory), ~7 s at 1M.
TABLEAU_LIKE = LinearCostModel(
    name="tableau-like", seconds_per_point=5.2e-6, overhead_seconds=1.5
)

#: Back-solved from Fig 2/4: ~2 s at 1M including load, linear growth.
MATHGL_LIKE = LinearCostModel(
    name="mathgl-like", seconds_per_point=2.1e-6, overhead_seconds=0.3
)


def fit_linear_model(name: str, sizes: np.ndarray,
                     seconds: np.ndarray) -> LinearCostModel:
    """Least-squares fit of a :class:`LinearCostModel` to measurements.

    A negative fitted intercept is clamped to zero (tiny point counts
    can produce one through measurement noise).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    seconds = np.asarray(seconds, dtype=np.float64)
    if len(sizes) < 2 or len(sizes) != len(seconds):
        raise ConfigurationError(
            "need at least two (size, seconds) pairs of equal length"
        )
    rate, intercept = np.polyfit(sizes, seconds, deg=1)
    if rate <= 0:
        raise ConfigurationError(
            f"fitted rate must be positive, got {rate:g} "
            "(timings are not increasing with size)"
        )
    return LinearCostModel(
        name=name,
        seconds_per_point=float(rate),
        overhead_seconds=float(max(intercept, 0.0)),
    )


def measure_renderer(sizes: list[int], width: int = 400, height: int = 400,
                     repeats: int = 3,
                     rng: int | np.random.Generator | None = 0
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Median render seconds of our raster renderer per point count.

    Returns ``(sizes, seconds)`` arrays ready for
    :func:`fit_linear_model`.
    """
    if not sizes or any(s < 1 for s in sizes):
        raise ConfigurationError(f"sizes must be positive, got {sizes}")
    gen = as_generator(rng)
    renderer = ScatterRenderer(width=width, height=height)
    viewport = Viewport(0.0, 0.0, 1.0, 1.0)
    out = np.empty(len(sizes), dtype=np.float64)
    for i, n in enumerate(sizes):
        pts = gen.random((n, 2))
        timing = time_callable(
            lambda p=pts: renderer.render(p, viewport=viewport),
            repeats=repeats, warmup=1,
        )
        out[i] = timing.median
    return np.asarray(sizes, dtype=np.float64), out
