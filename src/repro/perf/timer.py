"""Timing utilities for the latency experiments.

Wall-clock measurement with monotonic clocks, repeat-and-aggregate
helpers, and a context-manager :class:`Timer` — the plumbing under the
Fig 2/4/9/10 experiments.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    samples: list[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)


def time_callable(fn: Callable[[], object], repeats: int = 3,
                  warmup: int = 1) -> TimingResult:
    """Time ``fn`` over ``repeats`` runs after ``warmup`` discarded runs."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    result = TimingResult()
    for _ in range(repeats):
        with Timer() as t:
            fn()
        result.samples.append(t.elapsed)
    return result
