"""RGBA raster canvas backing the scatter renderer.

A :class:`Canvas` is an ``(H, W, 4)`` uint8 buffer with source-over
alpha compositing, the only blend mode a scatter plot needs.  Pixel
coordinates follow image convention: row 0 at the top, ``(row, col)``
indexing.
"""

from __future__ import annotations

import numpy as np

from ..errors import CanvasSizeError, VisualizationError

WHITE = (255, 255, 255, 255)
BLACK = (0, 0, 0, 255)


class Canvas:
    """A fixed-size RGBA image buffer.

    Parameters
    ----------
    width / height:
        Pixel dimensions, both >= 1.
    background:
        RGBA fill color (default opaque white).
    """

    def __init__(self, width: int, height: int,
                 background: tuple[int, int, int, int] = WHITE) -> None:
        if width < 1 or height < 1:
            raise CanvasSizeError(f"canvas must be >= 1x1, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self._buffer = np.empty((self.height, self.width, 4), dtype=np.uint8)
        self._buffer[:, :] = np.asarray(background, dtype=np.uint8)

    @property
    def pixels(self) -> np.ndarray:
        """The live ``(H, W, 4)`` buffer (mutations show in the output)."""
        return self._buffer

    def to_rgb(self) -> np.ndarray:
        """An ``(H, W, 3)`` copy with alpha dropped (assumes opaque bg)."""
        return self._buffer[:, :, :3].copy()

    # -- drawing ------------------------------------------------------------
    def blend_pixels(self, rows: np.ndarray, cols: np.ndarray,
                     color: tuple[int, int, int, int]) -> None:
        """Source-over blend ``color`` into the given pixel positions.

        Out-of-bounds positions are clipped away.  Duplicate positions
        blend once (last-write on duplicates is acceptable for point
        clouds; per-point accumulation is done a level up when needed).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise VisualizationError("rows/cols shape mismatch")
        keep = ((rows >= 0) & (rows < self.height)
                & (cols >= 0) & (cols < self.width))
        rows = rows[keep]
        cols = cols[keep]
        if len(rows) == 0:
            return
        src = np.asarray(color, dtype=np.float64)
        alpha = src[3] / 255.0
        dst = self._buffer[rows, cols].astype(np.float64)
        blended = dst.copy()
        blended[:, :3] = src[:3] * alpha + dst[:, :3] * (1.0 - alpha)
        blended[:, 3] = np.minimum(255.0, src[3] + dst[:, 3] * (1.0 - alpha))
        self._buffer[rows, cols] = np.round(blended).astype(np.uint8)

    def blend_pixels_colors(self, rows: np.ndarray, cols: np.ndarray,
                            colors: np.ndarray, alpha: float = 1.0) -> None:
        """Blend per-pixel RGB ``colors`` with a shared ``alpha``."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        colors = np.asarray(colors, dtype=np.float64)
        if not (0.0 <= alpha <= 1.0):
            raise VisualizationError(f"alpha must be in [0, 1], got {alpha}")
        keep = ((rows >= 0) & (rows < self.height)
                & (cols >= 0) & (cols < self.width))
        rows = rows[keep]
        cols = cols[keep]
        colors = colors[keep]
        if len(rows) == 0:
            return
        dst = self._buffer[rows, cols].astype(np.float64)
        dst[:, :3] = colors * alpha + dst[:, :3] * (1.0 - alpha)
        dst[:, 3] = np.minimum(255.0, 255.0 * alpha + dst[:, 3] * (1.0 - alpha))
        self._buffer[rows, cols] = np.round(dst).astype(np.uint8)

    def draw_rect_outline(self, row0: int, col0: int, row1: int, col1: int,
                          color: tuple[int, int, int, int] = BLACK) -> None:
        """A 1-pixel rectangle outline (used for axes boxes and markers)."""
        row0, row1 = sorted((int(row0), int(row1)))
        col0, col1 = sorted((int(col0), int(col1)))
        rows = np.concatenate([
            np.full(col1 - col0 + 1, row0), np.full(col1 - col0 + 1, row1),
            np.arange(row0, row1 + 1), np.arange(row0, row1 + 1),
        ])
        cols = np.concatenate([
            np.arange(col0, col1 + 1), np.arange(col0, col1 + 1),
            np.full(row1 - row0 + 1, col0), np.full(row1 - row0 + 1, col1),
        ])
        self.blend_pixels(rows, cols, color)

    def draw_hline(self, row: int, col0: int, col1: int,
                   color: tuple[int, int, int, int] = BLACK) -> None:
        """A horizontal 1-pixel line segment."""
        col0, col1 = sorted((int(col0), int(col1)))
        cols = np.arange(col0, col1 + 1)
        self.blend_pixels(np.full(len(cols), int(row)), cols, color)

    def draw_vline(self, col: int, row0: int, row1: int,
                   color: tuple[int, int, int, int] = BLACK) -> None:
        """A vertical 1-pixel line segment."""
        row0, row1 = sorted((int(row0), int(row1)))
        rows = np.arange(row0, row1 + 1)
        self.blend_pixels(rows, np.full(len(rows), int(col)), color)
