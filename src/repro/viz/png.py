"""Minimal pure-Python PNG encoder (stdlib ``zlib`` only).

The environment has no matplotlib/Pillow, so the rendering substrate
writes its own PNGs: 8-bit RGB or RGBA, non-interlaced, one IDAT
chunk.  That is everything a scatter-plot figure needs, and the files
open in any viewer.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import VisualizationError

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    """One PNG chunk: length, tag, payload, CRC over tag+payload."""
    return (struct.pack(">I", len(payload)) + tag + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF))


def encode_png(image: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode an ``(H, W, 3|4)`` uint8 array as a PNG byte string.

    Parameters
    ----------
    image:
        Row-major image; channel 3 (if present) is alpha.
    compress_level:
        zlib level 0–9.
    """
    arr = np.asarray(image)
    if arr.dtype != np.uint8:
        raise VisualizationError(f"image must be uint8, got {arr.dtype}")
    if arr.ndim != 3 or arr.shape[2] not in (3, 4):
        raise VisualizationError(
            f"image must have shape (H, W, 3) or (H, W, 4), got {arr.shape}"
        )
    if not (0 <= compress_level <= 9):
        raise VisualizationError(
            f"compress_level must be in [0, 9], got {compress_level}"
        )
    height, width, channels = arr.shape
    color_type = 2 if channels == 3 else 6

    header = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    # Filter byte 0 (None) before every scanline.
    raw = np.empty((height, 1 + width * channels), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = arr.reshape(height, width * channels)
    compressed = zlib.compress(raw.tobytes(), compress_level)

    return (_SIGNATURE
            + _chunk(b"IHDR", header)
            + _chunk(b"IDAT", compressed)
            + _chunk(b"IEND", b""))


def write_png(path: str, image: np.ndarray, compress_level: int = 6) -> None:
    """Encode ``image`` and write it to ``path``."""
    data = encode_png(image, compress_level=compress_level)
    with open(path, "wb") as f:
        f.write(data)


def decode_png_header(data: bytes) -> tuple[int, int, int]:
    """Parse ``(width, height, channels)`` from PNG bytes.

    Only what the tests need to round-trip our own encoder; rejects
    non-PNG input loudly.
    """
    if data[:8] != _SIGNATURE:
        raise VisualizationError("not a PNG: bad signature")
    if data[12:16] != b"IHDR":
        raise VisualizationError("not a PNG: missing IHDR")
    width, height = struct.unpack(">II", data[16:24])
    color_type = data[25]
    channels = {0: 1, 2: 3, 3: 1, 4: 2, 6: 4}.get(color_type)
    if channels is None:
        raise VisualizationError(f"unsupported color type {color_type}")
    return width, height, channels


def decode_png_pixels(data: bytes) -> np.ndarray:
    """Fully decode a PNG produced by :func:`encode_png`.

    Supports only what our encoder emits (8-bit RGB/RGBA, filter 0,
    single IDAT) — sufficient for round-trip tests.
    """
    width, height, channels = decode_png_header(data)
    if channels not in (3, 4):
        raise VisualizationError("decode supports RGB/RGBA only")
    # Collect IDAT payloads.
    offset = 8
    idat = b""
    while offset < len(data):
        (length,) = struct.unpack(">I", data[offset:offset + 4])
        tag = data[offset + 4:offset + 8]
        payload = data[offset + 8:offset + 8 + length]
        if tag == b"IDAT":
            idat += payload
        offset += 12 + length
        if tag == b"IEND":
            break
    raw = np.frombuffer(zlib.decompress(idat), dtype=np.uint8)
    stride = 1 + width * channels
    raw = raw.reshape(height, stride)
    if np.any(raw[:, 0] != 0):
        raise VisualizationError("decode supports filter type 0 only")
    return raw[:, 1:].reshape(height, width, channels).copy()
