"""Colormaps for the scatter renderer.

The map plots in the paper colour-encode altitude (Fig 1), so the
renderer needs continuous colormaps.  Three are built in from anchor
tables with linear interpolation:

* ``viridis``  — perceptually uniform default (anchor points sampled
  from the published colormap);
* ``terrain``  — green→brown→white, natural for altitude maps;
* ``gray``     — for monochrome density plots.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

# Anchor rows: fraction in [0, 1], then R, G, B in [0, 255].
_ANCHORS: dict[str, list[tuple[float, int, int, int]]] = {
    "viridis": [
        (0.00, 68, 1, 84),
        (0.14, 71, 45, 123),
        (0.29, 59, 82, 139),
        (0.43, 44, 113, 142),
        (0.57, 33, 144, 140),
        (0.71, 39, 173, 129),
        (0.86, 92, 200, 99),
        (1.00, 253, 231, 37),
    ],
    "terrain": [
        (0.00, 42, 111, 59),
        (0.25, 114, 160, 74),
        (0.50, 199, 186, 109),
        (0.75, 146, 103, 66),
        (1.00, 245, 245, 245),
    ],
    "gray": [
        (0.00, 20, 20, 20),
        (1.00, 235, 235, 235),
    ],
}


class Colormap:
    """Piecewise-linear colormap over RGB anchors.

    Call the instance with values in any range after :meth:`scaled`,
    or with fractions in [0, 1] directly via :meth:`rgb`.
    """

    def __init__(self, name: str) -> None:
        try:
            anchors = _ANCHORS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown colormap {name!r}; expected one of {sorted(_ANCHORS)}"
            ) from None
        self.name = name
        table = np.asarray(anchors, dtype=np.float64)
        self._fracs = table[:, 0]
        self._rgb = table[:, 1:4]

    def rgb(self, fractions: np.ndarray) -> np.ndarray:
        """Map fractions in [0, 1] to ``(..., 3)`` uint8 colors."""
        f = np.clip(np.asarray(fractions, dtype=np.float64), 0.0, 1.0)
        out = np.empty(f.shape + (3,), dtype=np.float64)
        for channel in range(3):
            out[..., channel] = np.interp(f, self._fracs, self._rgb[:, channel])
        return np.round(out).astype(np.uint8)

    def map_values(self, values: np.ndarray,
                   vmin: float | None = None,
                   vmax: float | None = None) -> np.ndarray:
        """Map raw values to colors, normalising by [vmin, vmax].

        Defaults to the observed min/max; a constant column maps to the
        colormap midpoint.
        """
        vals = np.asarray(values, dtype=np.float64)
        lo = float(np.min(vals)) if vmin is None else float(vmin)
        hi = float(np.max(vals)) if vmax is None else float(vmax)
        if hi <= lo:
            return self.rgb(np.full(vals.shape, 0.5))
        return self.rgb((vals - lo) / (hi - lo))


def colormap_names() -> list[str]:
    """Registered colormap names."""
    return sorted(_ANCHORS)
