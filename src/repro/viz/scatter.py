"""The scatter-plot rasteriser.

This is the substrate standing in for Tableau/MathGL rendering: it maps
data coordinates to pixels, paints markers, and exposes the pieces the
rest of the reproduction needs —

* a :class:`Viewport` (data-space window) so experiments can zoom, the
  operation that separates VAS from stratified sampling in Fig 1;
* value→color encoding (altitude in the map plots);
* §V density-proportional marker sizing when a sample carries weights;
* :meth:`ScatterRenderer.render`, whose cost is deliberately linear in
  the number of points — the property the paper measures in Fig 2/4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, VisualizationError
from ..geometry import as_points
from .canvas import Canvas
from .colormap import Colormap
from .markers import disc_offsets, radius_for_weight


@dataclass(frozen=True)
class Viewport:
    """A data-space window ``[xmin, xmax] × [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmin < self.xmax and self.ymin < self.ymax):
            raise ConfigurationError(
                f"degenerate viewport: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def fit(cls, points: np.ndarray, margin: float = 0.02) -> "Viewport":
        """The tight data bounds, padded by ``margin`` of each span."""
        pts = as_points(points)
        if len(pts) == 0:
            raise VisualizationError("cannot fit a viewport to no points")
        xmin, ymin = pts.min(axis=0)
        xmax, ymax = pts.max(axis=0)
        dx = max(xmax - xmin, 1e-12) * margin
        dy = max(ymax - ymin, 1e-12) * margin
        return cls(float(xmin - dx), float(ymin - dy),
                   float(xmax + dx), float(ymax + dy))

    def zoom(self, center: tuple[float, float], factor: float) -> "Viewport":
        """A window shrunk by ``factor`` (>1 zooms in) around ``center``."""
        if factor <= 0:
            raise ConfigurationError(f"zoom factor must be positive, got {factor}")
        cx, cy = center
        half_w = (self.xmax - self.xmin) / (2.0 * factor)
        half_h = (self.ymax - self.ymin) / (2.0 * factor)
        return Viewport(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of the rows of ``points`` inside the window."""
        pts = as_points(points)
        return ((pts[:, 0] >= self.xmin) & (pts[:, 0] <= self.xmax)
                & (pts[:, 1] >= self.ymin) & (pts[:, 1] <= self.ymax))

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin


class ScatterRenderer:
    """Rasterises point sets into a :class:`Canvas`.

    Parameters
    ----------
    width / height:
        Output size in pixels.
    viewport:
        The data window; ``None`` fits the first rendered point set.
    point_radius:
        Default marker radius in pixels.
    colormap:
        Colormap name for value-encoded points.
    alpha:
        Marker opacity in [0, 1]; overplotting darkens at alpha < 1.
    """

    def __init__(self, width: int = 400, height: int = 400,
                 viewport: Viewport | None = None,
                 point_radius: int = 1,
                 colormap: str = "viridis",
                 alpha: float = 1.0) -> None:
        if point_radius < 0:
            raise ConfigurationError(
                f"point_radius must be >= 0, got {point_radius}"
            )
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.width = int(width)
        self.height = int(height)
        self.viewport = viewport
        self.point_radius = int(point_radius)
        self.colormap = Colormap(colormap)
        self.alpha = float(alpha)

    # -- transforms -----------------------------------------------------------
    def to_pixels(self, points: np.ndarray,
                  viewport: Viewport) -> tuple[np.ndarray, np.ndarray]:
        """Data → (rows, cols) pixel centres; y grows upward in data space."""
        pts = as_points(points)
        fx = (pts[:, 0] - viewport.xmin) / viewport.width
        fy = (pts[:, 1] - viewport.ymin) / viewport.height
        cols = np.floor(fx * self.width).astype(np.int64)
        rows = np.floor((1.0 - fy) * self.height).astype(np.int64)
        np.clip(cols, -2**31, 2**31, out=cols)
        np.clip(rows, -2**31, 2**31, out=rows)
        return rows, cols

    # -- rendering ---------------------------------------------------------------
    def render(self, points: np.ndarray,
               values: np.ndarray | None = None,
               weights: np.ndarray | None = None,
               viewport: Viewport | None = None,
               canvas: Canvas | None = None) -> Canvas:
        """Rasterise ``points`` and return the canvas.

        Parameters
        ----------
        values:
            Optional per-point scalars mapped through the colormap
            (e.g. altitude); without them points are dark gray.
        weights:
            Optional §V density weights → marker radii via
            :func:`radius_for_weight`.
        viewport:
            Overrides the renderer's window for this call.
        canvas:
            Draw onto an existing canvas (layered plots).
        """
        pts = as_points(points)
        vp = viewport or self.viewport or Viewport.fit(pts)
        cv = canvas or Canvas(self.width, self.height)
        if len(pts) == 0:
            return cv

        inside = vp.contains(pts)
        pts_in = pts[inside]
        if len(pts_in) == 0:
            return cv
        rows, cols = self.to_pixels(pts_in, vp)

        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if len(values) != len(pts):
                raise VisualizationError(
                    f"values length {len(values)} != points length {len(pts)}"
                )
            colors = self.colormap.map_values(values[inside]).astype(np.float64)
        else:
            colors = np.full((len(pts_in), 3), 45.0)

        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if len(weights) != len(pts):
                raise VisualizationError(
                    f"weights length {len(weights)} != points length {len(pts)}"
                )
            radii = radius_for_weight(weights[inside],
                                      base_radius=self.point_radius)
        else:
            radii = np.full(len(pts_in), self.point_radius, dtype=np.int64)

        # Group by radius so each group is one vectorised blit.
        for radius in np.unique(radii):
            sel = radii == radius
            dr, dc = disc_offsets(int(radius))
            blit_rows = (rows[sel][:, None] + dr[None, :]).ravel()
            blit_cols = (cols[sel][:, None] + dc[None, :]).ravel()
            blit_colors = np.repeat(colors[sel], len(dr), axis=0)
            cv.blend_pixels_colors(blit_rows, blit_cols, blit_colors,
                                   alpha=self.alpha)
        return cv

    def visible_mask(self, points: np.ndarray,
                     viewport: Viewport | None = None) -> np.ndarray:
        """Mask of points that land inside the (resolved) viewport."""
        pts = as_points(points)
        vp = viewport or self.viewport or Viewport.fit(pts)
        return vp.contains(pts)

    def coverage(self, points: np.ndarray,
                 viewport: Viewport | None = None) -> float:
        """Fraction of canvas pixels painted by ``points``.

        A cheap scalar used by tests to compare renderings: VAS covers
        more pixels than uniform sampling at equal K on skewed data.
        """
        pts = as_points(points)
        vp = viewport or self.viewport or Viewport.fit(pts)
        inside = vp.contains(pts)
        if not np.any(inside):
            return 0.0
        rows, cols = self.to_pixels(pts[inside], vp)
        keep = (rows >= 0) & (rows < self.height) & (cols >= 0) & (cols < self.width)
        painted = len(set(zip(rows[keep].tolist(), cols[keep].tolist())))
        return painted / float(self.width * self.height)
