"""Rendering substrate: a from-scratch raster scatter-plot pipeline.

Stands in for the Tableau/MathGL/matplotlib layer of the paper's
architecture (Fig 3): numpy rasterisation, built-in colormaps, §V
density-proportional markers, and a pure-Python PNG encoder.
"""

from .axes import draw_cross, draw_frame, nice_ticks
from .canvas import BLACK, WHITE, Canvas
from .colormap import Colormap, colormap_names
from .figure import Figure
from .markers import disc_offsets, jitter_offsets, radius_for_weight
from .png import decode_png_header, decode_png_pixels, encode_png, write_png
from .scatter import ScatterRenderer, Viewport

__all__ = [
    "BLACK",
    "Canvas",
    "Colormap",
    "Figure",
    "ScatterRenderer",
    "Viewport",
    "WHITE",
    "colormap_names",
    "decode_png_header",
    "decode_png_pixels",
    "disc_offsets",
    "draw_cross",
    "draw_frame",
    "encode_png",
    "jitter_offsets",
    "nice_ticks",
    "radius_for_weight",
    "write_png",
]
