"""Point markers for the scatter rasteriser.

A marker is the set of pixel offsets a data point paints.  Disc
markers of integer radius are precomputed and cached; radius 0 is a
single pixel.  The §V density visualisation scales marker radius with
each point's density weight, and :func:`radius_for_weight` implements
the paper's "larger legend size" rule (area proportional to weight,
clamped to a radius range).
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..errors import ConfigurationError


@functools.lru_cache(maxsize=64)
def disc_offsets(radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Pixel offsets ``(drows, dcols)`` of a filled disc of ``radius``."""
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64)
    span = np.arange(-radius, radius + 1)
    dr, dc = np.meshgrid(span, span, indexing="ij")
    inside = dr * dr + dc * dc <= radius * radius
    return dr[inside].astype(np.int64), dc[inside].astype(np.int64)


def radius_for_weight(weights: np.ndarray, base_radius: int = 1,
                      max_radius: int = 6) -> np.ndarray:
    """Marker radius per point from §V density weights.

    Marker *area* grows linearly with weight (so visual ink reflects
    counts): ``r_i = base * sqrt(w_i / median(w))``, clamped to
    ``[base_radius, max_radius]``.  Zero or constant weights give every
    point the base radius.
    """
    if base_radius < 0 or max_radius < base_radius:
        raise ConfigurationError(
            f"need 0 <= base_radius <= max_radius, got "
            f"{base_radius}, {max_radius}"
        )
    w = np.asarray(weights, dtype=np.float64)
    positive = w[w > 0]
    if len(positive) == 0:
        return np.full(len(w), base_radius, dtype=np.int64)
    ref = float(np.median(positive))
    if ref <= 0:
        return np.full(len(w), base_radius, dtype=np.int64)
    r = base_radius * np.sqrt(np.maximum(w, 0.0) / ref)
    return np.clip(np.round(r), base_radius, max_radius).astype(np.int64)


def jitter_offsets(weights: np.ndarray, scale: float,
                   rng: np.random.Generator) -> np.ndarray:
    """§V's alternative to marker sizing: density-proportional jitter.

    Returns ``(N, 2)`` coordinate offsets whose standard deviation per
    point is ``scale * log1p(w_i / median(w))`` — dense points spread
    into small clouds, sparse points stay put.
    """
    if scale < 0:
        raise ConfigurationError(f"scale must be >= 0, got {scale}")
    w = np.asarray(weights, dtype=np.float64)
    positive = w[w > 0]
    ref = float(np.median(positive)) if len(positive) else 1.0
    sigma = scale * np.log1p(np.maximum(w, 0.0) / max(ref, 1e-12))
    return rng.normal(size=(len(w), 2)) * sigma[:, None]
