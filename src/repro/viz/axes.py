"""Axes decoration: ticks, frame and margins for figures.

Kept deliberately small — the experiments consume raw canvases, and the
examples add a frame and tick marks so the PNGs read as plots.  Tick
positions use the classic "nice numbers" rule (powers of 10 times
1, 2 or 5).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from .canvas import BLACK, Canvas
from .scatter import Viewport


def nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """About ``target`` round tick positions covering ``[lo, hi]``."""
    if not (hi > lo):
        raise ConfigurationError(f"need hi > lo, got [{lo}, {hi}]")
    if target < 2:
        raise ConfigurationError(f"target must be >= 2, got {target}")
    span = hi - lo
    raw_step = span / (target - 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    residual = raw_step / magnitude
    if residual < 1.5:
        step = magnitude
    elif residual < 3.5:
        step = 2.0 * magnitude
    elif residual < 7.5:
        step = 5.0 * magnitude
    else:
        step = 10.0 * magnitude
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(round(value, 12))
        value += step
    return ticks


def draw_frame(canvas: Canvas, viewport: Viewport,
               tick_length: int = 4, tick_target: int = 5) -> None:
    """Draw a plot frame with tick marks onto ``canvas`` in place.

    The frame hugs the canvas border; ticks are placed at nice data
    values projected through the viewport.
    """
    h, w = canvas.height, canvas.width
    canvas.draw_rect_outline(0, 0, h - 1, w - 1, BLACK)

    for tick in nice_ticks(viewport.xmin, viewport.xmax, tick_target):
        frac = (tick - viewport.xmin) / viewport.width
        col = int(frac * (w - 1))
        canvas.draw_vline(col, h - 1 - tick_length, h - 1, BLACK)
    for tick in nice_ticks(viewport.ymin, viewport.ymax, tick_target):
        frac = (tick - viewport.ymin) / viewport.height
        row = int((1.0 - frac) * (h - 1))
        canvas.draw_hline(row, 0, tick_length, BLACK)


def draw_cross(canvas: Canvas, viewport: Viewport,
               x: float, y: float, size: int = 6,
               color: tuple[int, int, int, int] = (200, 30, 30, 255)) -> None:
    """Draw an 'X' marker at data position ``(x, y)``.

    Used by the user-study figures: the regression task marks the query
    location with an X (Fig 5), and the density task marks candidate
    regions (Fig 6).
    """
    if size < 1:
        raise ConfigurationError(f"size must be >= 1, got {size}")
    fx = (x - viewport.xmin) / viewport.width
    fy = (y - viewport.ymin) / viewport.height
    col = int(fx * (canvas.width - 1))
    row = int((1.0 - fy) * (canvas.height - 1))
    offsets = np.arange(-size, size + 1)
    rows = np.concatenate([row + offsets, row + offsets])
    cols = np.concatenate([col + offsets, col - offsets])
    canvas.blend_pixels(rows, cols, color)
