"""Figure assembly: scatter + frame → PNG bytes or file.

:class:`Figure` is the highest-level entry point of the rendering
substrate — the two-line path from a sample to a saved plot::

    fig = Figure(width=600, height=600)
    fig.scatter(sample.points, values=altitudes)
    fig.save("plot.png")

It also reports its own render time, which the Fig 2/4 latency
experiments consume directly.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import VisualizationError
from .axes import draw_frame
from .canvas import Canvas
from .png import encode_png, write_png
from .scatter import ScatterRenderer, Viewport


class Figure:
    """A single-axes scatter figure.

    Parameters mirror :class:`ScatterRenderer`; ``frame`` toggles the
    axes box and tick marks.
    """

    def __init__(self, width: int = 400, height: int = 400,
                 viewport: Viewport | None = None,
                 point_radius: int = 1, colormap: str = "viridis",
                 alpha: float = 1.0, frame: bool = True) -> None:
        self.renderer = ScatterRenderer(
            width=width, height=height, viewport=viewport,
            point_radius=point_radius, colormap=colormap, alpha=alpha,
        )
        self.frame = bool(frame)
        self._canvas: Canvas | None = None
        self._viewport: Viewport | None = viewport
        #: Seconds spent in the last :meth:`scatter` call.
        self.last_render_seconds: float = 0.0

    # -- plotting -----------------------------------------------------------
    def scatter(self, points: np.ndarray,
                values: np.ndarray | None = None,
                weights: np.ndarray | None = None,
                viewport: Viewport | None = None) -> "Figure":
        """Render a point layer; returns ``self`` for chaining."""
        vp = viewport or self._viewport
        if vp is None:
            vp = Viewport.fit(points)
        started = time.perf_counter()
        self._canvas = self.renderer.render(
            points, values=values, weights=weights,
            viewport=vp, canvas=self._canvas,
        )
        self.last_render_seconds = time.perf_counter() - started
        self._viewport = vp
        return self

    @property
    def canvas(self) -> Canvas:
        """The drawn canvas; raises until :meth:`scatter` has run."""
        if self._canvas is None:
            raise VisualizationError("nothing drawn yet: call scatter() first")
        return self._canvas

    @property
    def viewport(self) -> Viewport:
        """The resolved data window of the drawn layers."""
        if self._viewport is None:
            raise VisualizationError("no viewport yet: call scatter() first")
        return self._viewport

    # -- output ----------------------------------------------------------------
    def finish(self) -> Canvas:
        """Apply the frame decoration and return the canvas."""
        canvas = self.canvas
        if self.frame:
            draw_frame(canvas, self.viewport)
        return canvas

    def to_png_bytes(self) -> bytes:
        """Encode the finished figure as PNG bytes."""
        return encode_png(self.finish().pixels)

    def save(self, path: str) -> None:
        """Write the finished figure to ``path`` as a PNG."""
        write_png(path, self.finish().pixels)
